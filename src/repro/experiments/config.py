"""The experimental configuration of Section VII.

The paper's setup: 2 producer sites with 8 camera streams each (from a
TEEVE light-saber session), every stream bounded by 2 Mbps; a CDN that
delivers with a constant 60 s delay (``Delta``); 10--1000 viewers with
12 Mbps inbound capacity and 0--14 Mbps outbound capacity; views of 6
streams (3 per site); ``d_max`` = 65 s, gateway buffer 300 ms, cache 25 s,
``kappa`` = 2; pairwise viewer delays from PlanetLab traces; CDN outbound
capacity bounded to 6000 Mbps for the capped experiments.

Choices the paper leaves open (documented here and in DESIGN.md):

* viewers pick among 8 candidate views (one per camera orientation) with
  Zipf(1.0) popularity -- the multi-view scenario the paper's title and
  grouping design target,
* the per-hop relay processing delay is 100 ms,
* the Random baseline probes 3 random peers per stream before falling back
  to the CDN and performs all-or-nothing admission (it has no
  priority-based degradation).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.core.dataplane import DataPlaneConfig
from repro.core.layering import DelayLayerConfig
from repro.core.recovery import DEFAULT_HEARTBEAT_PERIOD
from repro.traces.workload import (
    BandwidthDistribution,
    ChurnConfig,
    OscillationConfig,
    OutageConfig,
)
from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class ExperimentConfig:
    """Full parameterisation of one simulated 4D TeleCast scenario."""

    # Producers (Section VII: 2 sites x 8 streams, 2 Mbps each).
    num_sites: int = 2
    cameras_per_site: int = 8
    stream_bandwidth_mbps: float = 2.0
    frame_rate: float = 10.0

    # Views (3 streams per site per view; 8 candidate view orientations).
    streams_per_site_in_view: int = 3
    num_views: int = 8
    view_popularity_alpha: float = 1.0

    # Viewers.
    num_viewers: int = 1000
    inbound_mbps: float = 12.0
    outbound: BandwidthDistribution = field(
        default_factory=lambda: BandwidthDistribution.uniform(0.0, 12.0)
    )

    # CDN and delays.
    cdn_capacity_mbps: float = 6000.0
    cdn_delta: float = 60.0
    d_max: float = 65.0
    buffer_duration: float = 0.3
    cache_duration: float = 25.0
    kappa: int = 2
    processing_delay: float = 0.1
    control_processing_delay: float = 0.05

    # Baseline knobs.
    random_probe_count: int = 3
    random_strict_admission: bool = True

    # Workload dynamics.
    view_change_probability: float = 0.0
    departure_probability: float = 0.0
    arrival_rate_per_second: Optional[float] = None
    session_duration: float = 300.0
    #: Churn overlay (Poisson failures, mass-leave, flash-crowd mix);
    #: ``None`` keeps the schedule free of abrupt departures.
    churn: Optional[ChurnConfig] = None
    #: Correlated regional outage: one LSC crashes together with a
    #: fraction of its viewers in a single event (``None`` disables).
    outage: Optional[OutageConfig] = None
    #: Join/leave oscillation overlay targeted at scarce P2P slots
    #: (``None`` disables).
    oscillation: Optional[OscillationConfig] = None
    #: Heartbeat timeout of the per-LSC failure detectors.
    heartbeat_timeout: float = 10.0

    # Control plane.
    #: Number of Local Session Controllers; with more than one, the
    #: latency trace's geographic regions are sharded across them and
    #: every viewer joins through the LSC of its region (Section III).
    num_lscs: int = 1
    #: How workload events reach the controllers: ``"instant"`` applies
    #: every operation the moment its event fires (the seed semantics,
    #: pinned by the golden smoke test); ``"simulated"`` delivers typed
    #: control messages with in-flight latency on the event engine, so
    #: concurrent joins, stale view changes and heartbeat-driven failure
    #: detection become first-class, deterministic outcomes.
    control_plane: str = "instant"
    #: Interval between two heartbeat messages of a connected viewer (and
    #: the failure-sweep period) under the simulated control plane.
    heartbeat_period: float = DEFAULT_HEARTBEAT_PERIOD
    #: Multiplier on every simulated control-message transit delay;
    #: ``0.0`` forces instant delivery (placement then matches the
    #: instant control plane exactly), ``1.0`` uses the latency matrix.
    control_delay_scale: float = 1.0

    # Data plane.
    #: How frames reach the viewers after the control-plane run:
    #: ``"off"`` skips the frame replay entirely (the seed semantics,
    #: golden-pinned); ``"simulated"`` replays the TEEVE trace through
    #: the built overlay as event-driven data messages with per-edge
    #: bandwidth serialization, loss and QoE playout accounting.
    data_plane: str = "off"
    #: Per-frame, per-edge loss probability of the simulated data plane
    #: (the stationary rate under the Gilbert-Elliott model).
    data_loss_rate: float = 0.0
    #: Loss process per edge: ``"bernoulli"`` (i.i.d.) or ``"gilbert"``
    #: (two-state bursty channel at the same mean rate).
    data_loss_model: str = "bernoulli"
    #: Expected consecutive-loss run length of the Gilbert-Elliott
    #: channel; ``1.0`` is the memoryless limit (identical to Bernoulli).
    data_mean_burst_length: float = 1.0
    #: Multiplier on each edge's reserved forwarding rate (``None``
    #: removes the bandwidth model: zero serialization delay).
    data_bandwidth_headroom: Optional[float] = 1.0
    #: Extra per-edge data transit, as a multiple of the last-hop
    #: propagation delay (``0.0`` keeps the analytic schedule).
    data_transit_delay_scale: float = 0.0
    #: Period of the observed-delay ``kappa`` layer refresh during the
    #: replay (``None`` disables the feedback loop).
    data_refresh_interval: Optional[float] = 5.0
    #: Truncate every stream's trace to its first N frames during the
    #: simulated replay (``None`` replays the full trace).
    replay_frames_per_stream: Optional[int] = None

    # Performance core.
    #: Worker processes of the shard-parallel engine (``repro.parallel``):
    #: each group of LSCs (``lsc_index % workers``) runs its controller,
    #: stream trees and event loop in its own process, with cross-shard
    #: failovers resolved at deterministic barriers.  ``None`` or ``1``
    #: keeps the regular single-process path; values above ``num_lscs``
    #: are clamped to it.  Requires ``control_plane="instant"`` and
    #: ``data_plane="off"``.
    shard_workers: Optional[int] = None
    #: Whether the synthetic latency matrix derives pair delays lazily on
    #: first lookup instead of materializing all O(n^2) pairs up front.
    #: The delays are bit-identical either way; ``None`` (the default)
    #: picks lazy generation automatically for populations of
    #: :data:`LAZY_LATENCY_THRESHOLD` viewers or more, where the eager
    #: matrix build starts to dominate scenario construction.
    lazy_latency: Optional[bool] = None

    # Reproducibility.
    seed: int = 7
    latency_seed: int = 3
    baseline_seed: int = 11
    churn_seed: int = 13

    def __post_init__(self) -> None:
        require_positive(self.num_viewers, "num_viewers")
        require_positive(self.num_views, "num_views")
        require_positive(self.stream_bandwidth_mbps, "stream_bandwidth_mbps")
        require_positive(self.num_lscs, "num_lscs")
        if self.control_plane not in ("instant", "simulated"):
            raise ValueError(
                f"control_plane must be 'instant' or 'simulated', "
                f"got {self.control_plane!r}"
            )
        require_positive(self.heartbeat_period, "heartbeat_period")
        require_non_negative(self.control_delay_scale, "control_delay_scale")
        if self.data_plane not in ("off", "simulated"):
            raise ValueError(
                f"data_plane must be 'off' or 'simulated', got {self.data_plane!r}"
            )
        if self.shard_workers is not None:
            require_positive(self.shard_workers, "shard_workers")
            if self.shard_workers > 1 and (
                self.control_plane != "instant" or self.data_plane != "off"
            ):
                raise ValueError(
                    "shard_workers > 1 requires control_plane='instant' and "
                    "data_plane='off' (the simulated planes are whole-system "
                    "event loops)"
                )
            if self.shard_workers > self.num_lscs:
                # A worker beyond the LSC count would own an empty shard
                # (shard_lsc_indices returns []); clamp here so the
                # docstring's promise holds at construction time instead
                # of every consumer re-deriving it.
                warnings.warn(
                    f"shard_workers={self.shard_workers} exceeds "
                    f"num_lscs={self.num_lscs}; clamping to {self.num_lscs} "
                    "(the LSC is the shard unit, extra workers would idle)",
                    stacklevel=2,
                )
                object.__setattr__(self, "shard_workers", self.num_lscs)
        if not (0.0 <= self.data_loss_rate < 1.0):
            raise ValueError(
                f"data_loss_rate must be in [0, 1), got {self.data_loss_rate}"
            )
        if self.data_loss_model not in ("bernoulli", "gilbert"):
            raise ValueError(
                f"data_loss_model must be 'bernoulli' or 'gilbert', "
                f"got {self.data_loss_model!r}"
            )
        if self.data_mean_burst_length < 1.0:
            raise ValueError(
                f"data_mean_burst_length must be >= 1, "
                f"got {self.data_mean_burst_length}"
            )
        if self.data_bandwidth_headroom is not None:
            require_positive(self.data_bandwidth_headroom, "data_bandwidth_headroom")
        require_non_negative(self.data_transit_delay_scale, "data_transit_delay_scale")
        if self.data_refresh_interval is not None:
            require_positive(self.data_refresh_interval, "data_refresh_interval")
        if self.replay_frames_per_stream is not None and self.replay_frames_per_stream < 0:
            raise ValueError("replay_frames_per_stream must be >= 0 or None")
        if self.d_max <= self.cdn_delta:
            raise ValueError("d_max must exceed the CDN delay Delta")

    @property
    def streams_per_view(self) -> int:
        """Number of streams in every view request."""
        return self.num_sites * self.streams_per_site_in_view

    @property
    def demand_mbps(self) -> float:
        """Aggregate bandwidth demand when every viewer receives a full view."""
        return self.num_viewers * self.streams_per_view * self.stream_bandwidth_mbps

    def layer_config(self) -> DelayLayerConfig:
        """The delay-layer configuration implied by these parameters."""
        return DelayLayerConfig(
            delta=self.cdn_delta,
            buffer_duration=self.buffer_duration,
            kappa=self.kappa,
            d_max=self.d_max,
            cache_duration=self.cache_duration,
        )

    def data_plane_config(self) -> Optional[DataPlaneConfig]:
        """The simulated data-plane parameters, or ``None`` when off."""
        if self.data_plane == "off":
            return None
        return DataPlaneConfig(
            loss_rate=self.data_loss_rate,
            loss_model=self.data_loss_model,
            mean_burst_length=self.data_mean_burst_length,
            bandwidth_headroom=self.data_bandwidth_headroom,
            transit_delay_scale=self.data_transit_delay_scale,
            refresh_interval=self.data_refresh_interval,
            max_frames_per_stream=self.replay_frames_per_stream,
            seed=self.seed,
        )

    def with_(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def with_viewers(self, num_viewers: int) -> "ExperimentConfig":
        """Copy with a different viewer population size."""
        return self.with_(num_viewers=num_viewers)

    def with_scaled_population(self, num_viewers: int, **overrides) -> "ExperimentConfig":
        """Copy at a different population with the CDN cap scaled along.

        Keeps the paper's supply/demand balance (6000 Mbps per 1000
        viewers) so capped experiments stay comparable across scales.
        An unbounded CDN stays unbounded.
        """
        require_positive(num_viewers, "num_viewers")
        capacity = self.cdn_capacity_mbps * num_viewers / self.num_viewers
        return self.with_(
            num_viewers=num_viewers, cdn_capacity_mbps=capacity, **overrides
        )

    def with_outbound(self, distribution: BandwidthDistribution) -> "ExperimentConfig":
        """Copy with a different outbound-capacity distribution."""
        return self.with_(outbound=distribution)

    def with_uncapped_cdn(self) -> "ExperimentConfig":
        """Copy with an unbounded CDN (used by Figure 13(a))."""
        return self.with_(cdn_capacity_mbps=math.inf)

    def with_churn(self, churn: ChurnConfig) -> "ExperimentConfig":
        """Copy with a churn overlay applied to the workload schedule."""
        return self.with_(churn=churn)

    def with_lscs(self, num_lscs: int) -> "ExperimentConfig":
        """Copy with the control plane sharded across ``num_lscs`` LSCs."""
        return self.with_(num_lscs=num_lscs)


#: Population size at which ``lazy_latency=None`` switches to lazy
#: latency generation (the eager all-pairs build is O(n^2)).
LAZY_LATENCY_THRESHOLD = 2000

#: The defaults of Section VII with a bounded 6000 Mbps CDN.
PAPER_CONFIG = ExperimentConfig()

#: The outbound-bandwidth settings swept by Figure 13 (fixed values and ranges).
FIGURE_13_BANDWIDTH_SETTINGS: Tuple[BandwidthDistribution, ...] = (
    BandwidthDistribution.fixed(0.0),
    BandwidthDistribution.fixed(2.0),
    BandwidthDistribution.fixed(4.0),
    BandwidthDistribution.fixed(6.0),
    BandwidthDistribution.fixed(8.0),
    BandwidthDistribution.fixed(10.0),
    BandwidthDistribution.uniform(0.0, 12.0),
    BandwidthDistribution.uniform(2.0, 10.0),
    BandwidthDistribution.uniform(4.0, 14.0),
)


def viewer_counts(maximum: int, step: int = 100) -> List[int]:
    """The population sizes at which scaling figures report data points."""
    if maximum <= 0:
        raise ValueError("maximum must be > 0")
    counts = list(range(step, maximum + 1, step))
    if not counts or counts[-1] != maximum:
        counts.append(maximum)
    return counts
