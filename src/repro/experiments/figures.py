"""Regenerate the data series of every figure in the paper's evaluation.

Every function returns a small dataclass holding labelled series in the
same shape the corresponding figure plots, so the benchmark harness (and
EXPERIMENTS.md) can print paper-vs-measured tables.  Absolute values are
not expected to match the authors' testbed; the qualitative shape (who
wins, monotonicity, where curves saturate) is what the reproduction
checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentConfig,
    FIGURE_13_BANDWIDTH_SETTINGS,
    PAPER_CONFIG,
    viewer_counts,
)
from repro.experiments.runner import run_random_scenario, run_telecast_scenario
from repro.metrics.stats import cdf_points
from repro.traces.workload import BandwidthDistribution


@dataclass
class ScalingSeries:
    """One labelled curve over the number of viewers."""

    label: str
    num_viewers: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, viewers: int, value: float) -> None:
        """Append one (x, y) point."""
        self.num_viewers.append(viewers)
        self.values.append(value)

    def final_value(self) -> float:
        """Value at the largest population."""
        if not self.values:
            raise ValueError(f"series {self.label} is empty")
        return self.values[-1]


@dataclass
class FigureSeries:
    """A figure made of one or more scaling curves."""

    figure_id: str
    description: str
    series: List[ScalingSeries] = field(default_factory=list)

    def series_by_label(self, label: str) -> ScalingSeries:
        """Find a curve by its label."""
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(label)


@dataclass
class DistributionFigure:
    """A CDF-style figure (Figures 14(a), 14(b) and 14(c))."""

    figure_id: str
    description: str
    #: Label -> (value, cumulative fraction) points.
    cdfs: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Raw samples backing each CDF, for assertions and summaries.
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def fraction_at_most(self, label: str, threshold: float) -> float:
        """Fraction of samples of one CDF at or below ``threshold``."""
        values = self.samples.get(label, [])
        if not values:
            return 0.0
        return sum(1 for value in values if value <= threshold) / len(values)


def _scaling_checkpoints(config: ExperimentConfig, step: int) -> List[int]:
    return viewer_counts(config.num_viewers, step)


def _snapshot_metric(result, checkpoints: Sequence[int], extract) -> List[Tuple[int, float]]:
    points: List[Tuple[int, float]] = []
    for target in checkpoints:
        snapshot = result.metrics.snapshot_at(target)
        if snapshot is None:
            snapshot = result.final_snapshot
        points.append((target, extract(snapshot)))
    return points


# ---------------------------------------------------------------------------
# Figure 13: overlay construction and content distribution
# ---------------------------------------------------------------------------


def figure_13a_cdn_bandwidth(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    bandwidth_settings: Optional[Sequence[BandwidthDistribution]] = None,
    step: int = 100,
) -> FigureSeries:
    """Figure 13(a): CDN bandwidth required to accept every request.

    The CDN is uncapped so every request is served; the reported value is
    the CDN outbound bandwidth in use as the population grows, one curve
    per viewer outbound-bandwidth setting.
    """
    settings = tuple(bandwidth_settings or FIGURE_13_BANDWIDTH_SETTINGS)
    figure = FigureSeries(
        figure_id="13a",
        description="CDN bandwidth (Mbps) required for acceptance ratio 1.0",
    )
    checkpoints = _scaling_checkpoints(config, step)
    for setting in settings:
        scenario = config.with_outbound(setting).with_uncapped_cdn()
        result = run_telecast_scenario(scenario, snapshot_every=step)
        series = ScalingSeries(label=setting.label())
        for viewers, value in _snapshot_metric(
            result, checkpoints, lambda snap: snap.cdn_outbound_mbps
        ):
            series.add(viewers, value)
        figure.series.append(series)
    return figure


def figure_13b_cdn_fraction(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    bandwidth_settings: Optional[Sequence[BandwidthDistribution]] = None,
    step: int = 100,
) -> FigureSeries:
    """Figure 13(b): fraction of stream requests served by the (capped) CDN."""
    settings = tuple(bandwidth_settings or FIGURE_13_BANDWIDTH_SETTINGS)
    figure = FigureSeries(
        figure_id="13b",
        description="Fraction of subscriptions served directly by the CDN",
    )
    checkpoints = _scaling_checkpoints(config, step)
    for setting in settings:
        result = run_telecast_scenario(config.with_outbound(setting), snapshot_every=step)
        series = ScalingSeries(label=setting.label())
        for viewers, value in _snapshot_metric(
            result, checkpoints, lambda snap: snap.cdn_fraction
        ):
            series.add(viewers, value)
        figure.series.append(series)
    return figure


def figure_13c_acceptance_ratio(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    bandwidth_settings: Optional[Sequence[BandwidthDistribution]] = None,
    step: int = 100,
) -> FigureSeries:
    """Figure 13(c): acceptance ratio vs. population size with a capped CDN."""
    settings = tuple(bandwidth_settings or FIGURE_13_BANDWIDTH_SETTINGS)
    figure = FigureSeries(
        figure_id="13c",
        description="Stream acceptance ratio with CDN capacity 6000 Mbps",
    )
    checkpoints = _scaling_checkpoints(config, step)
    for setting in settings:
        result = run_telecast_scenario(config.with_outbound(setting), snapshot_every=step)
        series = ScalingSeries(label=setting.label())
        for viewers, value in _snapshot_metric(
            result, checkpoints, lambda snap: snap.acceptance_ratio
        ):
            series.add(viewers, value)
        figure.series.append(series)
    return figure


# ---------------------------------------------------------------------------
# Figure 14: stream subscription and overhead
# ---------------------------------------------------------------------------


def figure_14a_layer_distribution(
    config: ExperimentConfig = PAPER_CONFIG,
) -> DistributionFigure:
    """Figure 14(a): CDF of the maximum layer of accepted streams per viewer."""
    scenario = config.with_outbound(BandwidthDistribution.uniform(0.0, 12.0))
    result = run_telecast_scenario(scenario, snapshot_every=None)
    layers = [float(layer) for layer in result.final_snapshot.max_layers.values()]
    return DistributionFigure(
        figure_id="14a",
        description="Maximum delay layer of accepted streams per viewer",
        cdfs={"max_layer": cdf_points(layers)},
        samples={"max_layer": layers},
    )


def figure_14b_accepted_streams(
    config: ExperimentConfig = PAPER_CONFIG,
) -> DistributionFigure:
    """Figure 14(b): CDF of the number of streams each requesting viewer receives."""
    scenario = config.with_outbound(BandwidthDistribution.uniform(0.0, 12.0))
    result = run_telecast_scenario(scenario, snapshot_every=None)
    counts = [
        float(count)
        for count in result.final_snapshot.accepted_stream_counts.values()
    ]
    return DistributionFigure(
        figure_id="14b",
        description="Number of accepted streams per requesting viewer",
        cdfs={"accepted_streams": cdf_points(counts)},
        samples={"accepted_streams": counts},
    )


def figure_14c_overhead(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    view_change_probability: float = 0.3,
) -> DistributionFigure:
    """Figure 14(c): CDFs of viewer join delay and view-change delay."""
    scenario = config.with_(
        outbound=BandwidthDistribution.uniform(0.0, 12.0),
        view_change_probability=view_change_probability,
    )
    result = run_telecast_scenario(scenario, snapshot_every=None)
    joins = list(result.metrics.join_delays)
    changes = list(result.metrics.view_change_delays)
    return DistributionFigure(
        figure_id="14c",
        description="Join delay and view-change delay at the viewers (seconds)",
        cdfs={
            "join_delay": cdf_points(joins),
            "view_change_delay": cdf_points(changes),
        },
        samples={"join_delay": joins, "view_change_delay": changes},
    )


# ---------------------------------------------------------------------------
# Figure 15: comparison with Random dissemination
# ---------------------------------------------------------------------------


def figure_15a_vs_random_bandwidth(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    bandwidth_values: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0),
) -> FigureSeries:
    """Figure 15(a): acceptance ratio vs. per-viewer outbound bandwidth.

    One point per fixed outbound value, for 4D TeleCast and for the Random
    baseline, at the configured population size.
    """
    figure = FigureSeries(
        figure_id="15a",
        description="Acceptance ratio vs. outbound bandwidth per viewer",
    )
    telecast = ScalingSeries(label="TeleCast")
    random_series = ScalingSeries(label="Random")
    for value in bandwidth_values:
        scenario = config.with_outbound(BandwidthDistribution.fixed(value))
        telecast_result = run_telecast_scenario(scenario, snapshot_every=None)
        random_result = run_random_scenario(scenario, snapshot_every=None)
        # The x axis of this figure is bandwidth, not population size; the
        # ScalingSeries container is reused with bandwidth on the x axis.
        telecast.add(int(value), telecast_result.acceptance_ratio)
        random_series.add(int(value), random_result.acceptance_ratio)
    figure.series.extend([telecast, random_series])
    return figure


def figure_15b_vs_random_scale(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    step: int = 100,
) -> FigureSeries:
    """Figure 15(b): acceptance ratio vs. population, TeleCast vs. Random.

    Viewers contribute 2--14 Mbps of outbound bandwidth as in the paper.
    """
    scenario = config.with_outbound(BandwidthDistribution.uniform(2.0, 14.0))
    checkpoints = _scaling_checkpoints(scenario, step)
    figure = FigureSeries(
        figure_id="15b",
        description="Acceptance ratio vs. number of viewers (2-14 Mbps outbound)",
    )
    telecast_result = run_telecast_scenario(scenario, snapshot_every=step)
    random_result = run_random_scenario(scenario, snapshot_every=step)
    telecast = ScalingSeries(label="TeleCast")
    random_series = ScalingSeries(label="Random")
    for viewers, value in _snapshot_metric(
        telecast_result, checkpoints, lambda snap: snap.acceptance_ratio
    ):
        telecast.add(viewers, value)
    for viewers, value in _snapshot_metric(
        random_result, checkpoints, lambda snap: snap.acceptance_ratio
    ):
        random_series.add(viewers, value)
    figure.series.extend([telecast, random_series])
    return figure
