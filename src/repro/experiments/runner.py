"""Build and run one simulated dissemination scenario.

A *scenario* is one viewer population with one bandwidth distribution run
against either 4D TeleCast or the Random baseline.  The runner constructs
every substrate (producers, CDN, synthetic PlanetLab latencies, workload),
replays the join/view-change/departure schedule, and returns the collected
metrics plus periodic snapshots so the scaling figures can read one curve
off a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.random_routing import RandomDisseminationSystem
from repro.core.telecast import TeleCastSystem, build_views
from repro.experiments.config import ExperimentConfig
from repro.metrics.collectors import SessionMetrics, SystemSnapshot
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.model.view import GlobalView
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom
from repro.traces.workload import ChurnWorkload, ViewerWorkload, WorkloadConfig


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one scenario run."""

    config: ExperimentConfig
    metrics: SessionMetrics
    final_snapshot: SystemSnapshot
    cdn_outbound_mbps: float

    @property
    def acceptance_ratio(self) -> float:
        """Cumulative stream-level acceptance ratio of the run."""
        return self.metrics.acceptance_ratio

    def snapshots(self) -> List[SystemSnapshot]:
        """All periodic snapshots recorded during the run."""
        return list(self.metrics.snapshots)


def _build_workload(config: ExperimentConfig):
    workload_config = WorkloadConfig(
        num_viewers=config.num_viewers,
        outbound=config.outbound,
        inbound_mbps=config.inbound_mbps,
        num_views=config.num_views,
        view_popularity_alpha=config.view_popularity_alpha,
        arrival_rate_per_second=config.arrival_rate_per_second,
        view_change_probability=config.view_change_probability,
        departure_probability=config.departure_probability,
        session_duration=config.session_duration,
        buffer_duration=config.buffer_duration,
        cache_duration=config.cache_duration,
    )
    workload = ViewerWorkload(workload_config, rng=SeededRandom(config.seed))
    viewers = workload.viewers()
    events = workload.events(viewers)
    if config.churn is not None:
        churn = ChurnWorkload(config.churn, rng=SeededRandom(config.churn_seed))
        events = churn.events(events)
    return viewers, events


def _build_substrates(config: ExperimentConfig, viewers):
    producers = make_default_producers(
        config.num_sites,
        config.cameras_per_site,
        stream_bandwidth_mbps=config.stream_bandwidth_mbps,
        frame_rate=config.frame_rate,
    )
    # Controllers and the CDN are network endpoints too; including them in
    # the synthetic trace gives per-viewer control-plane delays (Figure 14(c))
    # a realistic spread instead of a constant default.
    control_nodes = ["GSC", "LSC-0", "CDN"]
    matrix = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in viewers] + control_nodes,
        rng=SeededRandom(config.latency_seed),
    )
    delay_model = DelayModel(
        matrix,
        processing_delay=config.processing_delay,
        cdn_delta=config.cdn_delta,
        control_processing_delay=config.control_processing_delay,
    )
    cdn = CDN(config.cdn_capacity_mbps, delta=config.cdn_delta)
    views = build_views(
        producers,
        num_views=config.num_views,
        streams_per_site=config.streams_per_site_in_view,
    )
    return producers, delay_model, cdn, views


def run_telecast_scenario(
    config: ExperimentConfig, *, snapshot_every: Optional[int] = 100
) -> ScenarioResult:
    """Run one scenario through 4D TeleCast."""
    viewers, events = _build_workload(config)
    producers, delay_model, cdn, views = _build_substrates(config, viewers)
    system = TeleCastSystem(
        producers,
        cdn,
        delay_model,
        config.layer_config(),
        heartbeat_timeout=config.heartbeat_timeout,
    )
    metrics = system.run_workload(viewers, events, views, snapshot_every=snapshot_every)
    return ScenarioResult(
        config=config,
        metrics=metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=cdn.used_outbound_mbps,
    )


def run_random_scenario(
    config: ExperimentConfig, *, snapshot_every: Optional[int] = 100
) -> ScenarioResult:
    """Run the same scenario through the Random dissemination baseline."""
    viewers, events = _build_workload(config)
    producers, delay_model, cdn, views = _build_substrates(config, viewers)
    system = RandomDisseminationSystem(
        producers,
        cdn,
        delay_model,
        config.layer_config(),
        rng=SeededRandom(config.baseline_seed),
        probe_count=config.random_probe_count,
        strict_admission=config.random_strict_admission,
    )
    by_id = {viewer.viewer_id: viewer for viewer in viewers}
    joins_seen = 0
    seen_joins = set()
    for event in events:
        if event.kind != "join" or event.viewer_id in seen_joins:
            # The baseline models only joins; view change, departure and
            # churn dynamics (including rejoins) are a 4D TeleCast
            # capability.
            continue
        seen_joins.add(event.viewer_id)
        view = views[event.view_index % len(views)]
        system.join_viewer(by_id[event.viewer_id], view, event.time)
        joins_seen += 1
        if snapshot_every and joins_seen % snapshot_every == 0:
            system.take_snapshot()
    system.take_snapshot()
    return ScenarioResult(
        config=config,
        metrics=system.metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=cdn.used_outbound_mbps,
    )
