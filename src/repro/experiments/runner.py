"""Build and run one simulated dissemination scenario.

A *scenario* is one viewer population with one bandwidth distribution run
against either 4D TeleCast or the Random baseline.  :func:`build_scenario`
constructs every substrate exactly once -- producers, CDN, synthetic
PlanetLab latencies (with every control node present in the matrix),
region-sharded LSC assignments and the workload schedule -- and both
runners consume the same :class:`Scenario`, so a sweep point never builds
its substrates twice.

With ``config.num_lscs > 1`` the latency trace's geographic regions are
clustered into one shard per Local Session Controller
(:func:`repro.net.regions.shard_regions`); every viewer carries the region
label of its latency-matrix node and joins through the LSC of its region,
which is how the paper scales the control plane (Section III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.random_routing import RandomDisseminationSystem
from repro.core.telecast import TeleCastSystem, build_views
from repro.experiments.config import LAZY_LATENCY_THRESHOLD, ExperimentConfig
from repro.metrics.collectors import SessionMetrics, SystemSnapshot
from repro.model.cdn import CDN
from repro.model.producer import ProducerSite, make_default_producers
from repro.model.view import GlobalView
from repro.model.viewer import Viewer
from repro.net.latency import DelayModel
from repro.net.planetlab import (
    DEFAULT_REGION_NAMES,
    PlanetLabTraceConfig,
    generate_planetlab_matrix,
    node_region_indices,
)
from repro.net.regions import shard_regions
from repro.sim.rng import SeededRandom
from repro.traces.workload import (
    ChurnWorkload,
    OutageConfig,
    ViewerEvent,
    ViewerWorkload,
    WorkloadConfig,
    alive_before,
    overlay_oscillation,
)


@dataclass
class Scenario:
    """Every substrate one scenario run needs, built exactly once.

    ``lsc_regions`` holds, per LSC index, the region names that LSC
    serves; ``control_node_ids`` lists the GSC, every LSC and the CDN in
    the order they were inserted into the latency matrix.
    """

    config: ExperimentConfig
    viewers: List[Viewer]
    events: List[ViewerEvent]
    producers: List[ProducerSite]
    delay_model: DelayModel
    cdn: CDN
    views: List[GlobalView]
    lsc_regions: Tuple[Tuple[str, ...], ...]
    control_node_ids: Tuple[str, ...]

    def viewers_by_region(self) -> Dict[str, List[str]]:
        """Viewer ids grouped by the region label they were assigned."""
        grouped: Dict[str, List[str]] = {}
        for viewer in self.viewers:
            grouped.setdefault(viewer.region_name, []).append(viewer.viewer_id)
        return grouped


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one scenario run."""

    config: ExperimentConfig
    metrics: SessionMetrics
    final_snapshot: SystemSnapshot
    cdn_outbound_mbps: float
    #: Connected viewers per LSC id at the end of the run (TeleCast only;
    #: the Random baseline has no LSC control plane).
    viewers_per_lsc: Dict[str, int] = field(default_factory=dict)
    #: Per-LSC placement digests, populated by the shard-parallel engine
    #: (the parity oracle against the single-process run).
    placement_digests: Dict[str, str] = field(default_factory=dict)

    @property
    def acceptance_ratio(self) -> float:
        """Cumulative stream-level acceptance ratio of the run."""
        return self.metrics.acceptance_ratio

    def snapshots(self) -> List[SystemSnapshot]:
        """All periodic snapshots recorded during the run."""
        return list(self.metrics.snapshots)


def _workload_config(config: ExperimentConfig) -> WorkloadConfig:
    return WorkloadConfig(
        num_viewers=config.num_viewers,
        outbound=config.outbound,
        inbound_mbps=config.inbound_mbps,
        num_views=config.num_views,
        view_popularity_alpha=config.view_popularity_alpha,
        arrival_rate_per_second=config.arrival_rate_per_second,
        view_change_probability=config.view_change_probability,
        departure_probability=config.departure_probability,
        session_duration=config.session_duration,
        buffer_duration=config.buffer_duration,
        cache_duration=config.cache_duration,
    )


def _build_workload(config: ExperimentConfig):
    workload = ViewerWorkload(_workload_config(config), rng=SeededRandom(config.seed))
    viewers = workload.viewers()
    events = workload.events(viewers)
    if config.churn is not None:
        churn = ChurnWorkload(config.churn, rng=SeededRandom(config.churn_seed))
        events = churn.events(events)
    if config.oscillation is not None:
        events = overlay_oscillation(events, config.oscillation)
    return viewers, events


def _inject_outage(
    events: List[ViewerEvent],
    viewers: Sequence[Viewer],
    lsc_regions: Tuple[Tuple[str, ...], ...],
    outage: OutageConfig,
) -> List[ViewerEvent]:
    """Overlay one correlated regional outage on the schedule.

    Emits a single ``lsc_fail`` event for the configured LSC plus abrupt
    ``fail`` events for a sampled fraction of the viewers connected in
    that LSC's regions at the outage instant.  Runs after viewers are
    stamped with their region labels (it needs the region -> LSC map).
    """
    lsc_index = outage.lsc_index % len(lsc_regions)
    region_set = set(lsc_regions[lsc_index])
    region_of = {viewer.viewer_id: viewer.region_name for viewer in viewers}
    alive = alive_before(events, outage.time)
    candidates = sorted(
        viewer_id for viewer_id in alive if region_of.get(viewer_id) in region_set
    )
    count = int(round(outage.viewer_fraction * len(candidates)))
    rng = SeededRandom(outage.seed)
    victims = sorted(rng.sample(candidates, min(count, len(candidates))))
    injected = [
        ViewerEvent(time=outage.time, kind="lsc_fail", viewer_id=f"LSC-{lsc_index}")
    ]
    injected.extend(
        ViewerEvent(time=outage.time, kind="fail", viewer_id=victim)
        for victim in victims
    )
    merged = list(events) + injected
    # Stable sort: base events keep causal order, and at the outage
    # instant the controller crash precedes its viewers' failures (the
    # drivers' (time, id) sort also puts "LSC-*" before "viewer-*").
    merged.sort(key=lambda event: event.time)
    return merged


def _region_names_for(config: ExperimentConfig) -> Sequence[str]:
    """Region labels of the latency trace, widened when LSCs outnumber them."""
    if config.num_lscs <= len(DEFAULT_REGION_NAMES):
        return DEFAULT_REGION_NAMES
    return tuple(f"geo-{index}" for index in range(config.num_lscs))


@dataclass(frozen=True)
class ShardSelection:
    """Which shard of an LSC-sharded run a projected build is for.

    ``build_scenario(config, shard=...)`` with a selection builds only
    the viewers, events and latency nodes owned by the worker's LSC
    group (ownership: ``viewer -> region -> LSC -> lsc_index %
    num_workers``), turning per-worker startup from O(n) into O(n/k).
    """

    num_workers: int
    worker_index: int

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not (0 <= self.worker_index < self.num_workers):
            raise ValueError(
                f"worker_index must be in [0, {self.num_workers}), "
                f"got {self.worker_index}"
            )


class _OwnershipTimeline:
    """Event ownership as a pure function of the config seeds.

    Mirrors the ownership maps every shard worker maintains: a region is
    owned by the LSC of its shard group until that LSC fails, after
    which it is owned by the nearest surviving LSC (the same failover
    target the workers resolve at the barrier).  The transition applies
    to every event sorting strictly after the ``lsc_fail`` event's
    ``(time, "LSC-i")`` key -- exactly where the workers repoint their
    maps in the sorted replay.
    """

    def __init__(self, config: ExperimentConfig, region_names: Sequence[str]):
        lsc_regions = shard_regions(region_names, config.num_lscs)
        self.lsc_regions = lsc_regions
        self.region_to_lsc_index = {
            region: index
            for index, group in enumerate(lsc_regions)
            for region in group
        }
        self.failed_index: Optional[int] = None
        self.target_index: Optional[int] = None
        self.transition_key: Optional[Tuple[float, str]] = None
        if config.outage is None:
            return
        failed_index = config.outage.lsc_index % len(lsc_regions)
        failed_id = f"LSC-{failed_index}"
        # The failover target is derived from the control-node delays
        # alone; delays are composition-independent, so this tiny lazy
        # matrix resolves the same target as any worker's full world.
        control_nodes = (
            ["GSC"] + [f"LSC-{i}" for i in range(config.num_lscs)] + ["CDN"]
        )
        control_matrix = generate_planetlab_matrix(
            control_nodes,
            rng=SeededRandom(config.latency_seed),
            config=PlanetLabTraceConfig(region_names=region_names),
            lazy=True,
        )
        control_model = DelayModel(control_matrix)
        # Imported lazily: repro.parallel imports this module.
        from repro.parallel.worker import nearest_surviving_lsc

        alive = [f"LSC-{i}" for i in range(config.num_lscs)]
        target_id = nearest_surviving_lsc(control_model, failed_id, alive)
        self.failed_index = failed_index
        self.target_index = (
            int(target_id.rsplit("-", 1)[1]) if target_id is not None else None
        )
        self.transition_key = (config.outage.time, failed_id)

    def owner_lsc_index(self, region: str, sort_key: Tuple[float, str]) -> Optional[int]:
        """Owning LSC index of a region at one event's sort key."""
        index = self.region_to_lsc_index.get(region)
        if index is None:
            return None
        if (
            self.transition_key is not None
            and index == self.failed_index
            and sort_key > self.transition_key
        ):
            return self.target_index
        return index

    def ever_owned_regions(self, num_workers: int, worker_index: int) -> set:
        """Regions owned by one worker at any point in the timeline."""
        owned = {
            region
            for region, index in self.region_to_lsc_index.items()
            if index % num_workers == worker_index
        }
        if (
            self.target_index is not None
            and self.failed_index is not None
            and self.target_index % num_workers == worker_index
        ):
            owned.update(self.lsc_regions[self.failed_index])
        return owned


def _project_outage_events(
    events: Iterable[ViewerEvent],
    outage: OutageConfig,
    timeline: _OwnershipTimeline,
    region_of_viewer,
    keep,
) -> List[ViewerEvent]:
    """Stream-inject the regional outage and filter by ownership.

    One pass over a time-ordered event stream that replicates
    :func:`_inject_outage` exactly without materializing the full
    schedule: connected viewers of the failed LSC's regions are tracked
    until the first event at or after the outage instant (the
    ``alive_before`` cut), and the injected block -- the ``lsc_fail``
    then the sampled victims' ``fail`` events -- is emitted after the
    last base event with ``time <= outage.time``, which is where the
    full path's stable time sort places it.  Every emitted event then
    passes the ownership predicate (``lsc_fail`` barriers reach every
    worker unconditionally).
    """
    assert timeline.failed_index is not None
    failed_regions = set(timeline.lsc_regions[timeline.failed_index])
    failed_id = f"LSC-{timeline.failed_index}"
    alive_in_failed: set = set()
    candidates: Optional[List[str]] = None
    injected_done = False
    out: List[ViewerEvent] = []

    def injected_block() -> List[ViewerEvent]:
        assert candidates is not None
        count = int(round(outage.viewer_fraction * len(candidates)))
        rng = SeededRandom(outage.seed)
        victims = sorted(rng.sample(candidates, min(count, len(candidates))))
        block = [
            ViewerEvent(time=outage.time, kind="lsc_fail", viewer_id=failed_id)
        ]
        block.extend(
            ViewerEvent(time=outage.time, kind="fail", viewer_id=victim)
            for victim in victims
        )
        return [event for event in block if keep(event)]

    for event in events:
        if candidates is None and event.time >= outage.time:
            candidates = sorted(alive_in_failed)
        if not injected_done and event.time > outage.time:
            out.extend(injected_block())
            injected_done = True
        if candidates is None and event.kind != "lsc_fail":
            if event.kind == "join":
                if region_of_viewer(event.viewer_id) in failed_regions:
                    alive_in_failed.add(event.viewer_id)
            elif event.kind in ("depart", "fail"):
                alive_in_failed.discard(event.viewer_id)
        if keep(event):
            out.append(event)
    if candidates is None:
        candidates = sorted(alive_in_failed)
    if not injected_done:
        out.extend(injected_block())
    return out


def _build_shard_scenario(config: ExperimentConfig, shard: ShardSelection) -> Scenario:
    """The shard-projected :func:`build_scenario`: O(shard) not O(n).

    Builds only what the selected worker's LSC group can ever touch:
    the viewers of its ever-owned regions (including regions migrated
    to it by an outage failover), the filtered slice of the event
    schedule, and a latency world interning only those viewers plus the
    control nodes.  Region assignment and pair delays are pure
    functions of per-node digests, so the projected substrates are
    byte-identical to the corresponding slice of the full build.

    Schedules with churn or oscillation overlays still generate the
    full event list before filtering (both overlays are functions of
    global connectedness); the viewer population and latency world are
    projected regardless, and overlay-free schedules (the scale-sweep
    shape) stream end to end without materializing the full schedule.
    """
    region_names = _region_names_for(config)
    timeline = _OwnershipTimeline(config, region_names)
    num_workers, worker_index = shard.num_workers, shard.worker_index
    ever_owned = timeline.ever_owned_regions(num_workers, worker_index)
    num_regions = len(region_names)

    # Region of every viewer, batch-computed once (the vectorized mix
    # when numpy is present): hashing per viewer per event through the
    # scalar path costs more than the construction work the projection
    # saves.  Viewer ids are "viewer-<index>", so position 7 onward is
    # the index into this table.
    viewer_regions = node_region_indices(
        config.latency_seed,
        (f"viewer-{index:05d}" for index in range(config.num_viewers)),
        num_regions,
    )
    ever_owned_indices = {
        index for index, name in enumerate(region_names) if name in ever_owned
    }
    owned_flags = [region in ever_owned_indices for region in viewer_regions]

    def owned_viewer(index: int, _viewer_id: str) -> bool:
        return owned_flags[index]

    def region_of_viewer(viewer_id: str) -> str:
        return region_names[viewer_regions[int(viewer_id[7:])]]

    def keep(event: ViewerEvent) -> bool:
        if event.kind == "lsc_fail":
            return True  # barriers reach every worker
        owner = timeline.owner_lsc_index(
            region_of_viewer(event.viewer_id), (event.time, event.viewer_id)
        )
        return owner is not None and owner % num_workers == worker_index

    workload = ViewerWorkload(_workload_config(config), rng=SeededRandom(config.seed))
    owned_viewers: List[Viewer] = []

    def viewer_feed() -> Iterator[Viewer]:
        # Feed the full population to the event generator (its RNG
        # stream must stay byte-identical) while capturing the owned
        # viewers as they stream past; viewers of other shards arrive
        # as id-only stubs that skip Viewer construction entirely.
        for viewer in workload.iter_viewers(owned=owned_viewer):
            if viewer.__class__ is Viewer:
                viewer.region_name = region_of_viewer(viewer.viewer_id)
                owned_viewers.append(viewer)
            yield viewer

    if config.churn is None and config.oscillation is None:
        if config.outage is None:
            # Ownership is time-invariant, so the viewer-level predicate
            # is the whole filter: other shards' viewers consume their
            # RNG draws but never construct events.  The feed already
            # resolved ownership -- owned viewers arrive as real Viewer
            # objects, everyone else as a stub.
            def owned_object(viewer: Viewer) -> bool:
                return viewer.__class__ is Viewer

            events = list(workload.iter_events(viewer_feed(), owned=owned_object))
        else:
            # The outage projection additionally tracks aliveness in the
            # failed LSC's regions, so those viewers' events must exist
            # even when another shard owns them pre-failover.
            failed_regions = set(timeline.lsc_regions[timeline.failed_index])
            failed_indices = {
                index
                for index, name in enumerate(region_names)
                if name in failed_regions
            }

            def tracked_viewer(viewer: Viewer) -> bool:
                return (
                    viewer.__class__ is Viewer
                    or viewer_regions[int(viewer.viewer_id[7:])] in failed_indices
                )

            events = _project_outage_events(
                workload.iter_events(viewer_feed(), owned=tracked_viewer),
                config.outage,
                timeline,
                region_of_viewer,
                keep,
            )
    else:
        base: Iterable[ViewerEvent] = workload.iter_events(viewer_feed())
        if config.churn is not None:
            churn = ChurnWorkload(config.churn, rng=SeededRandom(config.churn_seed))
            base = churn.events(base)
        if config.oscillation is not None:
            base = overlay_oscillation(list(base), config.oscillation)
        if config.outage is None:
            events = [event for event in base if keep(event)]
        else:
            events = _project_outage_events(
                base, config.outage, timeline, region_of_viewer, keep
            )

    producers = make_default_producers(
        config.num_sites,
        config.cameras_per_site,
        stream_bandwidth_mbps=config.stream_bandwidth_mbps,
        frame_rate=config.frame_rate,
    )
    control_nodes = (
        ["GSC"] + [f"LSC-{index}" for index in range(config.num_lscs)] + ["CDN"]
    )
    lazy = (
        config.lazy_latency
        if config.lazy_latency is not None
        else config.num_viewers >= LAZY_LATENCY_THRESHOLD
    )
    matrix = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in owned_viewers] + control_nodes,
        rng=SeededRandom(config.latency_seed),
        config=PlanetLabTraceConfig(region_names=region_names),
        lazy=lazy,
    )
    delay_model = DelayModel(
        matrix,
        processing_delay=config.processing_delay,
        cdn_delta=config.cdn_delta,
        control_processing_delay=config.control_processing_delay,
    )
    cdn = CDN(config.cdn_capacity_mbps, delta=config.cdn_delta)
    views = build_views(
        producers,
        num_views=config.num_views,
        streams_per_site=config.streams_per_site_in_view,
    )
    return Scenario(
        config=config,
        viewers=owned_viewers,
        events=events,
        producers=producers,
        delay_model=delay_model,
        cdn=cdn,
        views=views,
        lsc_regions=timeline.lsc_regions,
        control_node_ids=tuple(control_nodes),
    )


def build_scenario(
    config: ExperimentConfig, shard: Optional[ShardSelection] = None
) -> Scenario:
    """Construct all substrates of one scenario (shared by both runners).

    Controllers and the CDN are network endpoints too; including them in
    the synthetic trace gives per-viewer control-plane delays
    (Figure 14(c)) a realistic spread instead of a constant default.
    Every viewer is stamped with the region label of its latency-matrix
    node so the GSC's region-based LSC assignment operates on real trace
    geography.

    With a :class:`ShardSelection` the build is projected down to one
    shard worker's slice of the world (see :func:`_build_shard_scenario`);
    the projected substrates are byte-identical to the corresponding
    slice of the full build.
    """
    if shard is not None:
        return _build_shard_scenario(config, shard)
    viewers, events = _build_workload(config)
    producers = make_default_producers(
        config.num_sites,
        config.cameras_per_site,
        stream_bandwidth_mbps=config.stream_bandwidth_mbps,
        frame_rate=config.frame_rate,
    )
    control_nodes = (
        ["GSC"] + [f"LSC-{index}" for index in range(config.num_lscs)] + ["CDN"]
    )
    region_names = _region_names_for(config)
    lazy = (
        config.lazy_latency
        if config.lazy_latency is not None
        else config.num_viewers >= LAZY_LATENCY_THRESHOLD
    )
    matrix = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in viewers] + control_nodes,
        rng=SeededRandom(config.latency_seed),
        config=PlanetLabTraceConfig(region_names=region_names),
        lazy=lazy,
    )
    for viewer in viewers:
        viewer.region_name = matrix.regions.region_of(viewer.viewer_id).name
    lsc_regions = shard_regions(region_names, config.num_lscs)
    if config.outage is not None:
        events = _inject_outage(events, viewers, lsc_regions, config.outage)
    delay_model = DelayModel(
        matrix,
        processing_delay=config.processing_delay,
        cdn_delta=config.cdn_delta,
        control_processing_delay=config.control_processing_delay,
    )
    cdn = CDN(config.cdn_capacity_mbps, delta=config.cdn_delta)
    views = build_views(
        producers,
        num_views=config.num_views,
        streams_per_site=config.streams_per_site_in_view,
    )
    return Scenario(
        config=config,
        viewers=viewers,
        events=events,
        producers=producers,
        delay_model=delay_model,
        cdn=cdn,
        views=views,
        lsc_regions=lsc_regions,
        control_node_ids=tuple(control_nodes),
    )


def build_telecast_system(scenario: Scenario) -> TeleCastSystem:
    """Instantiate the 4D TeleCast control plane over a built scenario."""
    config = scenario.config
    return TeleCastSystem(
        scenario.producers,
        scenario.cdn,
        scenario.delay_model,
        config.layer_config(),
        lsc_regions=scenario.lsc_regions,
        heartbeat_timeout=config.heartbeat_timeout,
    )


def run_telecast_scenario(
    config: ExperimentConfig,
    *,
    snapshot_every: Optional[int] = 100,
    scenario: Optional[Scenario] = None,
    profile: bool = False,
) -> ScenarioResult:
    """Run one scenario through 4D TeleCast.

    Pass a prebuilt ``scenario`` to reuse substrates across systems (the
    scenario must have been built from the same ``config``); note a
    scenario is stateful (CDN reservations, viewer buffers) and can only
    be run once.

    ``config.control_plane`` picks the workload driver: ``"instant"``
    applies events synchronously (the seed semantics), ``"simulated"``
    delivers them as in-flight control messages with latency and records
    the observed join/view-change latency distributions next to the
    analytic ones.

    ``config.data_plane="simulated"`` appends an event-driven frame
    replay phase after the control-plane run: the synthetic TEEVE trace
    travels through the built overlay with per-edge bandwidth
    serialization and loss, and the QoE summary keys
    (``qoe_startup_delay_*``, ``qoe_continuity_mean``, ``qoe_skew_*``)
    appear in ``metrics.summary()``.

    With ``profile`` set, per-phase wall-clock times (scenario build,
    join, view_change, churn, replay, metrics) are accumulated into
    ``metrics.phase_timings`` without affecting any recorded metric.

    With ``config.shard_workers`` > 1 the run is delegated to the
    shard-parallel engine (:mod:`repro.parallel`): each group of LSCs
    runs in its own worker process and the merged result comes back as
    the same :class:`ScenarioResult` shape.  Sharded runs rebuild the
    scenario inside each worker, so a prebuilt ``scenario`` cannot be
    reused across the process boundary.
    """
    if config.shard_workers is not None and config.shard_workers > 1:
        if scenario is not None:
            raise ValueError(
                "sharded runs rebuild the scenario per worker; "
                "a prebuilt scenario cannot be passed with shard_workers > 1"
            )
        # Imported lazily: repro.parallel imports this module for the
        # ScenarioResult shape.
        from repro.parallel import run_sharded_scenario

        return run_sharded_scenario(
            config, snapshot_every=snapshot_every, profile=profile
        ).result
    build_started = time.perf_counter() if profile else 0.0
    if scenario is None:
        scenario = build_scenario(config)
    build_seconds = time.perf_counter() - build_started if profile else 0.0
    system = build_telecast_system(scenario)
    metrics = system.run_workload(
        scenario.viewers,
        scenario.events,
        scenario.views,
        snapshot_every=snapshot_every,
        profile=profile,
        control_plane=config.control_plane,
        heartbeat_period=config.heartbeat_period,
        control_delay_scale=config.control_delay_scale,
        data_plane=config.data_plane_config(),
    )
    if profile:
        metrics.add_phase_time("build", build_seconds)
    return ScenarioResult(
        config=config,
        metrics=metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=scenario.cdn.used_outbound_mbps,
        viewers_per_lsc=system.viewers_per_lsc(),
    )


def run_random_scenario(
    config: ExperimentConfig,
    *,
    snapshot_every: Optional[int] = 100,
    scenario: Optional[Scenario] = None,
) -> ScenarioResult:
    """Run the same scenario through the Random dissemination baseline."""
    if scenario is None:
        scenario = build_scenario(config)
    system = RandomDisseminationSystem(
        scenario.producers,
        scenario.cdn,
        scenario.delay_model,
        config.layer_config(),
        rng=SeededRandom(config.baseline_seed),
        probe_count=config.random_probe_count,
        strict_admission=config.random_strict_admission,
    )
    by_id = {viewer.viewer_id: viewer for viewer in scenario.viewers}
    joins_seen = 0
    seen_joins = set()
    for event in scenario.events:
        if event.kind != "join" or event.viewer_id in seen_joins:
            # The baseline models only joins; view change, departure and
            # churn dynamics (including rejoins) are a 4D TeleCast
            # capability.
            continue
        seen_joins.add(event.viewer_id)
        view = scenario.views[event.view_index % len(scenario.views)]
        system.join_viewer(by_id[event.viewer_id], view, event.time)
        joins_seen += 1
        if snapshot_every and joins_seen % snapshot_every == 0:
            system.take_snapshot()
    system.take_snapshot()
    return ScenarioResult(
        config=config,
        metrics=system.metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=scenario.cdn.used_outbound_mbps,
    )
