"""Build and run one simulated dissemination scenario.

A *scenario* is one viewer population with one bandwidth distribution run
against either 4D TeleCast or the Random baseline.  :func:`build_scenario`
constructs every substrate exactly once -- producers, CDN, synthetic
PlanetLab latencies (with every control node present in the matrix),
region-sharded LSC assignments and the workload schedule -- and both
runners consume the same :class:`Scenario`, so a sweep point never builds
its substrates twice.

With ``config.num_lscs > 1`` the latency trace's geographic regions are
clustered into one shard per Local Session Controller
(:func:`repro.net.regions.shard_regions`); every viewer carries the region
label of its latency-matrix node and joins through the LSC of its region,
which is how the paper scales the control plane (Section III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.random_routing import RandomDisseminationSystem
from repro.core.telecast import TeleCastSystem, build_views
from repro.experiments.config import LAZY_LATENCY_THRESHOLD, ExperimentConfig
from repro.metrics.collectors import SessionMetrics, SystemSnapshot
from repro.model.cdn import CDN
from repro.model.producer import ProducerSite, make_default_producers
from repro.model.view import GlobalView
from repro.model.viewer import Viewer
from repro.net.latency import DelayModel
from repro.net.planetlab import (
    DEFAULT_REGION_NAMES,
    PlanetLabTraceConfig,
    generate_planetlab_matrix,
)
from repro.net.regions import shard_regions
from repro.sim.rng import SeededRandom
from repro.traces.workload import (
    ChurnWorkload,
    OutageConfig,
    ViewerEvent,
    ViewerWorkload,
    WorkloadConfig,
    alive_before,
    overlay_oscillation,
)


@dataclass
class Scenario:
    """Every substrate one scenario run needs, built exactly once.

    ``lsc_regions`` holds, per LSC index, the region names that LSC
    serves; ``control_node_ids`` lists the GSC, every LSC and the CDN in
    the order they were inserted into the latency matrix.
    """

    config: ExperimentConfig
    viewers: List[Viewer]
    events: List[ViewerEvent]
    producers: List[ProducerSite]
    delay_model: DelayModel
    cdn: CDN
    views: List[GlobalView]
    lsc_regions: Tuple[Tuple[str, ...], ...]
    control_node_ids: Tuple[str, ...]

    def viewers_by_region(self) -> Dict[str, List[str]]:
        """Viewer ids grouped by the region label they were assigned."""
        grouped: Dict[str, List[str]] = {}
        for viewer in self.viewers:
            grouped.setdefault(viewer.region_name, []).append(viewer.viewer_id)
        return grouped


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one scenario run."""

    config: ExperimentConfig
    metrics: SessionMetrics
    final_snapshot: SystemSnapshot
    cdn_outbound_mbps: float
    #: Connected viewers per LSC id at the end of the run (TeleCast only;
    #: the Random baseline has no LSC control plane).
    viewers_per_lsc: Dict[str, int] = field(default_factory=dict)
    #: Per-LSC placement digests, populated by the shard-parallel engine
    #: (the parity oracle against the single-process run).
    placement_digests: Dict[str, str] = field(default_factory=dict)

    @property
    def acceptance_ratio(self) -> float:
        """Cumulative stream-level acceptance ratio of the run."""
        return self.metrics.acceptance_ratio

    def snapshots(self) -> List[SystemSnapshot]:
        """All periodic snapshots recorded during the run."""
        return list(self.metrics.snapshots)


def _build_workload(config: ExperimentConfig):
    workload_config = WorkloadConfig(
        num_viewers=config.num_viewers,
        outbound=config.outbound,
        inbound_mbps=config.inbound_mbps,
        num_views=config.num_views,
        view_popularity_alpha=config.view_popularity_alpha,
        arrival_rate_per_second=config.arrival_rate_per_second,
        view_change_probability=config.view_change_probability,
        departure_probability=config.departure_probability,
        session_duration=config.session_duration,
        buffer_duration=config.buffer_duration,
        cache_duration=config.cache_duration,
    )
    workload = ViewerWorkload(workload_config, rng=SeededRandom(config.seed))
    viewers = workload.viewers()
    events = workload.events(viewers)
    if config.churn is not None:
        churn = ChurnWorkload(config.churn, rng=SeededRandom(config.churn_seed))
        events = churn.events(events)
    if config.oscillation is not None:
        events = overlay_oscillation(events, config.oscillation)
    return viewers, events


def _inject_outage(
    events: List[ViewerEvent],
    viewers: Sequence[Viewer],
    lsc_regions: Tuple[Tuple[str, ...], ...],
    outage: OutageConfig,
) -> List[ViewerEvent]:
    """Overlay one correlated regional outage on the schedule.

    Emits a single ``lsc_fail`` event for the configured LSC plus abrupt
    ``fail`` events for a sampled fraction of the viewers connected in
    that LSC's regions at the outage instant.  Runs after viewers are
    stamped with their region labels (it needs the region -> LSC map).
    """
    lsc_index = outage.lsc_index % len(lsc_regions)
    region_set = set(lsc_regions[lsc_index])
    region_of = {viewer.viewer_id: viewer.region_name for viewer in viewers}
    alive = alive_before(events, outage.time)
    candidates = sorted(
        viewer_id for viewer_id in alive if region_of.get(viewer_id) in region_set
    )
    count = int(round(outage.viewer_fraction * len(candidates)))
    rng = SeededRandom(outage.seed)
    victims = sorted(rng.sample(candidates, min(count, len(candidates))))
    injected = [
        ViewerEvent(time=outage.time, kind="lsc_fail", viewer_id=f"LSC-{lsc_index}")
    ]
    injected.extend(
        ViewerEvent(time=outage.time, kind="fail", viewer_id=victim)
        for victim in victims
    )
    merged = list(events) + injected
    # Stable sort: base events keep causal order, and at the outage
    # instant the controller crash precedes its viewers' failures (the
    # drivers' (time, id) sort also puts "LSC-*" before "viewer-*").
    merged.sort(key=lambda event: event.time)
    return merged


def _region_names_for(config: ExperimentConfig) -> Sequence[str]:
    """Region labels of the latency trace, widened when LSCs outnumber them."""
    if config.num_lscs <= len(DEFAULT_REGION_NAMES):
        return DEFAULT_REGION_NAMES
    return tuple(f"geo-{index}" for index in range(config.num_lscs))


def build_scenario(config: ExperimentConfig) -> Scenario:
    """Construct all substrates of one scenario (shared by both runners).

    Controllers and the CDN are network endpoints too; including them in
    the synthetic trace gives per-viewer control-plane delays
    (Figure 14(c)) a realistic spread instead of a constant default.
    Every viewer is stamped with the region label of its latency-matrix
    node so the GSC's region-based LSC assignment operates on real trace
    geography.
    """
    viewers, events = _build_workload(config)
    producers = make_default_producers(
        config.num_sites,
        config.cameras_per_site,
        stream_bandwidth_mbps=config.stream_bandwidth_mbps,
        frame_rate=config.frame_rate,
    )
    control_nodes = (
        ["GSC"] + [f"LSC-{index}" for index in range(config.num_lscs)] + ["CDN"]
    )
    region_names = _region_names_for(config)
    lazy = (
        config.lazy_latency
        if config.lazy_latency is not None
        else config.num_viewers >= LAZY_LATENCY_THRESHOLD
    )
    matrix = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in viewers] + control_nodes,
        rng=SeededRandom(config.latency_seed),
        config=PlanetLabTraceConfig(region_names=region_names),
        lazy=lazy,
    )
    for viewer in viewers:
        viewer.region_name = matrix.regions.region_of(viewer.viewer_id).name
    lsc_regions = shard_regions(region_names, config.num_lscs)
    if config.outage is not None:
        events = _inject_outage(events, viewers, lsc_regions, config.outage)
    delay_model = DelayModel(
        matrix,
        processing_delay=config.processing_delay,
        cdn_delta=config.cdn_delta,
        control_processing_delay=config.control_processing_delay,
    )
    cdn = CDN(config.cdn_capacity_mbps, delta=config.cdn_delta)
    views = build_views(
        producers,
        num_views=config.num_views,
        streams_per_site=config.streams_per_site_in_view,
    )
    return Scenario(
        config=config,
        viewers=viewers,
        events=events,
        producers=producers,
        delay_model=delay_model,
        cdn=cdn,
        views=views,
        lsc_regions=lsc_regions,
        control_node_ids=tuple(control_nodes),
    )


def build_telecast_system(scenario: Scenario) -> TeleCastSystem:
    """Instantiate the 4D TeleCast control plane over a built scenario."""
    config = scenario.config
    return TeleCastSystem(
        scenario.producers,
        scenario.cdn,
        scenario.delay_model,
        config.layer_config(),
        lsc_regions=scenario.lsc_regions,
        heartbeat_timeout=config.heartbeat_timeout,
    )


def run_telecast_scenario(
    config: ExperimentConfig,
    *,
    snapshot_every: Optional[int] = 100,
    scenario: Optional[Scenario] = None,
    profile: bool = False,
) -> ScenarioResult:
    """Run one scenario through 4D TeleCast.

    Pass a prebuilt ``scenario`` to reuse substrates across systems (the
    scenario must have been built from the same ``config``); note a
    scenario is stateful (CDN reservations, viewer buffers) and can only
    be run once.

    ``config.control_plane`` picks the workload driver: ``"instant"``
    applies events synchronously (the seed semantics), ``"simulated"``
    delivers them as in-flight control messages with latency and records
    the observed join/view-change latency distributions next to the
    analytic ones.

    ``config.data_plane="simulated"`` appends an event-driven frame
    replay phase after the control-plane run: the synthetic TEEVE trace
    travels through the built overlay with per-edge bandwidth
    serialization and loss, and the QoE summary keys
    (``qoe_startup_delay_*``, ``qoe_continuity_mean``, ``qoe_skew_*``)
    appear in ``metrics.summary()``.

    With ``profile`` set, per-phase wall-clock times (scenario build,
    join, view_change, churn, replay, metrics) are accumulated into
    ``metrics.phase_timings`` without affecting any recorded metric.

    With ``config.shard_workers`` > 1 the run is delegated to the
    shard-parallel engine (:mod:`repro.parallel`): each group of LSCs
    runs in its own worker process and the merged result comes back as
    the same :class:`ScenarioResult` shape.  Sharded runs rebuild the
    scenario inside each worker, so a prebuilt ``scenario`` cannot be
    reused across the process boundary.
    """
    if config.shard_workers is not None and config.shard_workers > 1:
        if scenario is not None:
            raise ValueError(
                "sharded runs rebuild the scenario per worker; "
                "a prebuilt scenario cannot be passed with shard_workers > 1"
            )
        # Imported lazily: repro.parallel imports this module for the
        # ScenarioResult shape.
        from repro.parallel import run_sharded_scenario

        return run_sharded_scenario(
            config, snapshot_every=snapshot_every, profile=profile
        ).result
    build_started = time.perf_counter() if profile else 0.0
    if scenario is None:
        scenario = build_scenario(config)
    build_seconds = time.perf_counter() - build_started if profile else 0.0
    system = build_telecast_system(scenario)
    metrics = system.run_workload(
        scenario.viewers,
        scenario.events,
        scenario.views,
        snapshot_every=snapshot_every,
        profile=profile,
        control_plane=config.control_plane,
        heartbeat_period=config.heartbeat_period,
        control_delay_scale=config.control_delay_scale,
        data_plane=config.data_plane_config(),
    )
    if profile:
        metrics.add_phase_time("build", build_seconds)
    return ScenarioResult(
        config=config,
        metrics=metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=scenario.cdn.used_outbound_mbps,
        viewers_per_lsc=system.viewers_per_lsc(),
    )


def run_random_scenario(
    config: ExperimentConfig,
    *,
    snapshot_every: Optional[int] = 100,
    scenario: Optional[Scenario] = None,
) -> ScenarioResult:
    """Run the same scenario through the Random dissemination baseline."""
    if scenario is None:
        scenario = build_scenario(config)
    system = RandomDisseminationSystem(
        scenario.producers,
        scenario.cdn,
        scenario.delay_model,
        config.layer_config(),
        rng=SeededRandom(config.baseline_seed),
        probe_count=config.random_probe_count,
        strict_admission=config.random_strict_admission,
    )
    by_id = {viewer.viewer_id: viewer for viewer in scenario.viewers}
    joins_seen = 0
    seen_joins = set()
    for event in scenario.events:
        if event.kind != "join" or event.viewer_id in seen_joins:
            # The baseline models only joins; view change, departure and
            # churn dynamics (including rejoins) are a 4D TeleCast
            # capability.
            continue
        seen_joins.add(event.viewer_id)
        view = scenario.views[event.view_index % len(scenario.views)]
        system.join_viewer(by_id[event.viewer_id], view, event.time)
        joins_seen += 1
        if snapshot_every and joins_seen % snapshot_every == 0:
            system.take_snapshot()
    system.take_snapshot()
    return ScenarioResult(
        config=config,
        metrics=system.metrics,
        final_snapshot=system.snapshot(),
        cdn_outbound_mbps=scenario.cdn.used_outbound_mbps,
    )
