"""Named sweep families exposed by ``python -m repro.experiments sweep``.

Each preset mirrors one axis of the paper's evaluation at a configurable
scale.  The CDN capacity follows the population (6000 Mbps per 1000
viewers, the paper's supply/demand balance), which a cartesian grid cannot
express -- those presets use explicit point lists with paired overrides.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.experiments.config import (
    FIGURE_13_BANDWIDTH_SETTINGS,
    PAPER_CONFIG,
    ExperimentConfig,
    viewer_counts,
)
from repro.experiments.sweep.grid import SweepSpec

#: Outbound settings of the bandwidth preset: the subset of Figure 13's
#: legend that spans the no/low/high-contribution regimes.
_BANDWIDTH_LABELS = (
    "C_obw=0",
    "C_obw=4",
    "C_obw=8",
    "C_obw=0-12",
    "C_obw=2-10",
    "C_obw=4-14",
)
_BANDWIDTH_SETTINGS = tuple(
    setting
    for setting in FIGURE_13_BANDWIDTH_SETTINGS
    if setting.label() in _BANDWIDTH_LABELS
)


def _scaled_points(
    base: ExperimentConfig, counts: List[int], **extra: object
) -> List[Mapping[str, object]]:
    """One point per population size, CDN cap scaled proportionally."""
    return [
        {
            "num_viewers": count,
            "cdn_capacity_mbps": base.with_scaled_population(count).cdn_capacity_mbps,
            **extra,
        }
        for count in counts
    ]


def smoke_sweep(base: ExperimentConfig = PAPER_CONFIG) -> SweepSpec:
    """Tiny 6-point grid for CI: 3 populations x both systems, 3 LSCs."""
    return SweepSpec(
        name="smoke",
        base=base,
        points=_scaled_points(base, [40, 80, 120], num_lscs=3),
        systems=("telecast", "random"),
    )


def scale_sweep(
    base: ExperimentConfig = PAPER_CONFIG,
    *,
    max_viewers: int = 1000,
    step: int = 100,
    num_lscs: int = 3,
) -> SweepSpec:
    """Figure-15b-style scale curve: population sweep, TeleCast vs Random."""
    return SweepSpec(
        name="scale",
        base=base,
        points=_scaled_points(base, viewer_counts(max_viewers, step), num_lscs=num_lscs),
        systems=("telecast", "random"),
    )


def bandwidth_sweep(
    base: ExperimentConfig = PAPER_CONFIG,
    *,
    viewers: int = 400,
    num_lscs: int = 3,
) -> SweepSpec:
    """Figure-13-style outbound-bandwidth grid at a fixed population."""
    scaled = base.with_scaled_population(viewers, num_lscs=num_lscs)
    return SweepSpec(
        name="bandwidth",
        base=scaled,
        grid={"outbound": list(_BANDWIDTH_SETTINGS)},
    )


def shard_sweep(
    base: ExperimentConfig = PAPER_CONFIG, *, viewers: int = 400
) -> SweepSpec:
    """Control-plane sharding sweep: the same network world over 1..5 LSCs.

    The latency trace derives every delay from a per-pair digest
    (:func:`repro.net.planetlab.generate_planetlab_matrix`), so points
    differ *only* in control-plane layout -- viewer-to-viewer delays,
    regions and workloads are identical across the axis.
    """
    scaled = base.with_scaled_population(viewers)
    return SweepSpec(
        name="shards",
        base=scaled,
        grid={"num_lscs": [1, 2, 3, 5]},
        # One fixed world, resharded: deriving per-point seeds here would
        # change the population along with the control plane.
        derive_seeds=False,
    )


#: Populations of the ``scale10k`` preset (an order of magnitude past the
#: paper's 1000-viewer maximum, unlocked by the performance core).
SCALE10K_POPULATIONS = (2000, 5000, 10000)


def scale10k_sweep(
    base: ExperimentConfig = PAPER_CONFIG, *, num_lscs: int = 5
) -> SweepSpec:
    """Order-of-magnitude scale curve: 2k / 5k / 10k-viewer telecasts.

    Only feasible on the performance core: populations of this size use
    lazy latency generation (``ExperimentConfig.lazy_latency`` auto) and
    the indexed degree push-down, so a 10k-viewer point joins in seconds
    instead of minutes.  TeleCast only -- the Random baseline's probe
    loop contributes nothing to a scale ceiling measurement.
    """
    return SweepSpec(
        name="scale10k",
        base=base,
        points=_scaled_points(base, list(SCALE10K_POPULATIONS), num_lscs=num_lscs),
        systems=("telecast",),
    )


#: Populations of the ``scale100k`` preset (the shard-parallel engine's
#: territory: another order of magnitude past ``scale10k``).
SCALE100K_POPULATIONS = (20000, 50000, 100000)


def scale100k_sweep(
    base: ExperimentConfig = PAPER_CONFIG,
    *,
    num_lscs: int = 8,
    shard_workers: int = 4,
) -> SweepSpec:
    """Scale curve toward the 100k-viewer target of the parallel engine.

    Every point runs on the shard-parallel engine
    (``shard_workers`` worker processes over ``num_lscs`` LSCs), the
    lazy latency world (auto above
    :data:`~repro.experiments.config.LAZY_LATENCY_THRESHOLD` viewers)
    and the streamed, generator-based workload
    (:meth:`~repro.traces.workload.ViewerWorkload.iter_events`), so no
    phase materializes O(n^2) state up front.  TeleCast only, like
    ``scale10k``.  Run with ``--jobs 1`` (the default): each point
    already owns the machine's cores through its shard workers, and a
    daemonic sweep pool could not spawn them anyway.
    """
    return SweepSpec(
        name="scale100k",
        base=base,
        points=_scaled_points(
            base,
            list(SCALE100K_POPULATIONS),
            num_lscs=num_lscs,
            shard_workers=shard_workers,
        ),
        systems=("telecast",),
    )


#: Populations of the ``scale1m`` preset (the shard-filtered build's
#: territory: the march from ``scale100k`` toward one million viewers).
SCALE1M_POPULATIONS = (200000, 500000, 1000000)


def scale1m_sweep(
    base: ExperimentConfig = PAPER_CONFIG,
    *,
    num_lscs: int = 16,
    shard_workers: int = 4,
) -> SweepSpec:
    """Scale curve toward the 1M-viewer target of the shard-filtered build.

    Same engine as ``scale100k`` -- shard workers over the lazy latency
    world and the streamed workload -- but each worker now builds *only
    its shard's projection* of the scenario
    (``build_scenario(config, shard=...)``), so per-worker startup no
    longer rebuilds the whole O(n) world.  That is what moves the
    feasible ceiling from 100k to 1M: at this scale the full rebuild
    alone would dominate every point.  16 LSCs keep per-shard
    populations near the ``scale100k`` regime.  TeleCast only; run with
    ``--jobs 1`` like ``scale100k``.  Budget hours, not minutes, for
    the full curve -- ``benchmarks/bench_scale_parallel.py --scale1m``
    measures the single 1M point with gates if that is all you need.
    """
    return SweepSpec(
        name="scale1m",
        base=base,
        points=_scaled_points(
            base,
            list(SCALE1M_POPULATIONS),
            num_lscs=num_lscs,
            shard_workers=shard_workers,
        ),
        systems=("telecast",),
    )


def controlplane_sweep(
    base: ExperimentConfig = PAPER_CONFIG, *, viewers: int = 120, num_lscs: int = 3
) -> SweepSpec:
    """Control-plane delay sensitivity on the event-driven driver.

    Every point runs with ``control_plane="simulated"``: joins arrive as
    in-flight messages over a spread Poisson schedule with graceful and
    abrupt churn, so controller processing delay shapes the observed
    join latency and the heartbeat period decides how fast silent
    failures are swept.  The grid crosses the per-step processing delay
    (zero, the paper's 50 ms, and a slow 200 ms controller) with a safe
    heartbeat period and one *beyond the 10 s failure timeout* -- in the
    lazy regime healthy viewers go silent longer than the detector
    tolerates and are spuriously repaired, the pathology the
    event-driven control plane exists to expose.  Summaries carry both
    the analytic (``join_delay_*``) and the observed
    (``observed_join_delay_*``) percentiles, which is the data behind
    the observed-vs-analytic comparison in ``docs/BENCHMARKS.md``.
    """
    from repro.traces.workload import ChurnConfig

    scaled = base.with_scaled_population(
        viewers,
        num_lscs=num_lscs,
        control_plane="simulated",
        arrival_rate_per_second=4.0,
        view_change_probability=0.1,
        departure_probability=0.1,
        churn=ChurnConfig(
            failure_rate_per_second=0.1,
            graceful_fraction=0.25,
            rejoin_probability=0.3,
            duration=120.0,
        ),
    )
    return SweepSpec(
        name="controlplane",
        base=scaled,
        grid={
            "control_processing_delay": [0.0, 0.05, 0.2],
            "heartbeat_period": [4.0, 12.0],
        },
        # One fixed world per axis point: deriving per-point seeds would
        # vary the workload along with the control-plane knobs, burying
        # the delay sensitivity under population noise.
        derive_seeds=False,
    )


def qoe_sweep(
    base: ExperimentConfig = PAPER_CONFIG, *, viewers: int = 80, num_lscs: int = 2
) -> SweepSpec:
    """QoE sensitivity of the simulated data plane: loss x bandwidth headroom.

    Every point appends an event-driven frame replay to the workload run
    (``data_plane="simulated"``): 200 frames per stream travel through
    the built overlay with per-edge serialization at
    ``data_bandwidth_headroom`` times the reserved stream rate and a
    ``data_loss_rate`` Bernoulli drop per edge, with the observed-delay
    ``kappa`` layer refresh closing the feedback loop.  Summaries carry
    the QoE keys (``qoe_startup_delay_*``, ``qoe_continuity_mean``,
    ``qoe_skew_*``, ``qoe_skew_within_dbuff``) next to the usual
    acceptance metrics -- the data behind the skew-vs-``d_buff`` table in
    ``docs/BENCHMARKS.md``.
    """
    scaled = base.with_scaled_population(
        viewers,
        num_lscs=num_lscs,
        data_plane="simulated",
        replay_frames_per_stream=200,
    )
    return SweepSpec(
        name="qoe",
        base=scaled,
        grid={
            "data_loss_rate": [0.0, 0.02, 0.05],
            "data_bandwidth_headroom": [1.0, 2.0],
        },
        # One fixed world per axis point: deriving per-point seeds would
        # vary the overlay along with the data-plane knobs, burying the
        # QoE sensitivity under placement noise.
        derive_seeds=False,
    )


def scenarios_sweep(base: ExperimentConfig = PAPER_CONFIG) -> SweepSpec:
    """Every adversarial scenario preset at smoke scale, one point each.

    Each point reproduces exactly the config of
    ``python -m repro.experiments scenario <name> --smoke``, expressed as
    the field-by-field diff against the paper defaults so the stored
    params name every hostile knob (outage, oscillation, Gilbert-Elliott
    loss, flapping heartbeat...).  Seeds are part of the preset identity,
    hence ``derive_seeds=False``; the invariant *gate* runs through the
    ``scenario`` CLI / the pytest harness, while this family provides the
    comparable JSONL metrics trail.
    """
    import dataclasses

    from repro.scenarios.presets import SCENARIOS

    points = []
    for spec in SCENARIOS.values():
        config = spec.config(smoke=True)
        points.append(
            {
                name.name: getattr(config, name.name)
                for name in dataclasses.fields(ExperimentConfig)
                if getattr(config, name.name) != getattr(base, name.name)
            }
        )
    return SweepSpec(
        name="scenarios",
        base=base,
        points=points,
        derive_seeds=False,
    )


def named_sweeps(
    *,
    viewers: int = 400,
    step: int = 100,
    num_lscs: int = 3,
) -> Dict[str, SweepSpec]:
    """All presets, keyed by CLI name, at the requested scale."""
    return {
        "smoke": smoke_sweep(),
        "scale": scale_sweep(max_viewers=viewers, step=step, num_lscs=num_lscs),
        "scale10k": scale10k_sweep(),
        "scale100k": scale100k_sweep(),
        "scale1m": scale1m_sweep(),
        "bandwidth": bandwidth_sweep(viewers=viewers, num_lscs=num_lscs),
        "shards": shard_sweep(viewers=viewers),
        "controlplane": controlplane_sweep(),
        "qoe": qoe_sweep(),
        "scenarios": scenarios_sweep(),
    }
