"""Declarative parameter grids over :class:`ExperimentConfig`.

A :class:`SweepSpec` names a family of scenarios the way the paper's
evaluation does (Section VII sweeps audience size, outbound bandwidth and
CDN capacity): a base configuration, a cartesian ``grid`` of field
overrides, an optional list of explicit ``points``, and the system(s) --
4D TeleCast and/or the Random baseline -- each point runs against.

Expansion is fully deterministic: points are ordered grid-first (axes in
sorted name order, values in listed order) then explicit points, and each
point derives its RNG seeds from a stable hash of its overrides, so the
same parameter point always simulates the same world no matter where in
which sweep it appears.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.experiments.config import ExperimentConfig

#: Systems a sweep point can run against.
KNOWN_SYSTEMS: Tuple[str, ...] = ("telecast", "random")

#: Seed fields that participate in per-point seed derivation.
_SEED_FIELDS: Tuple[str, ...] = ("seed", "latency_seed", "baseline_seed", "churn_seed")

#: Modulus of the derived seed offset (a prime, to spread grid points).
_SEED_OFFSET_MOD = 99991


def _jsonable(value):
    """Convert a value to something ``json.dumps`` renders canonically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            key: _jsonable(item)
            for key, item in sorted(dataclasses.asdict(value).items())
        }
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and value != value:  # NaN never round-trips
        raise ValueError("NaN is not a valid sweep parameter value")
    return value


def canonical_json(value) -> str:
    """Canonical JSON used for config hashes and seed derivation."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def config_hash(config: ExperimentConfig) -> str:
    """Stable short hash of a full experiment configuration.

    Two configs hash equal iff every field (including nested
    distributions and churn overlays) is equal, so a stored sweep record
    can be matched against the code that would regenerate it.
    """
    payload = canonical_json(dataclasses.asdict(config))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def derive_seed_offset(overrides: Mapping[str, object]) -> int:
    """Stable per-point seed offset from the non-seed overrides."""
    payload = canonical_json(
        {key: value for key, value in overrides.items() if key not in _SEED_FIELDS}
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % _SEED_OFFSET_MOD


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved scenario of a sweep: config + system + identity."""

    sweep_name: str
    index: int
    system: str
    overrides: Tuple[Tuple[str, object], ...]
    config: ExperimentConfig
    config_hash: str

    @property
    def point_id(self) -> str:
        """Stable identifier: sweep name, ordinal, system.

        Deliberately excludes the config hash: a baseline comparison
        matches points by id and then *detects* hash drift, which would
        be impossible if the hash were part of the identity.
        """
        return f"{self.sweep_name}/{self.index:03d}/{self.system}"

    def params(self) -> Dict[str, object]:
        """The overrides of this point as a plain dict."""
        return dict(self.overrides)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a parameter sweep.

    Attributes
    ----------
    name:
        Sweep family name; prefixes every point id and names the results
        file in the store.
    base:
        Configuration every point starts from.
    grid:
        Field name -> list of values; the cartesian product over all axes
        is swept.  Axis names must be ``ExperimentConfig`` fields.
    points:
        Explicit override dicts appended after the grid (for paired
        overrides a cartesian product cannot express, e.g. scaling the
        CDN cap with the population).
    systems:
        Which dissemination systems each point runs against.
    derive_seeds:
        When true (the default) every point offsets the base seeds by a
        stable hash of its overrides, so distinct points simulate
        distinct worlds while remaining reproducible.  Points that
        explicitly override a seed field keep their explicit value.
    """

    name: str
    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    grid: Mapping[str, Sequence[object]] = field(default_factory=dict)
    points: Sequence[Mapping[str, object]] = ()
    systems: Tuple[str, ...] = ("telecast",)
    derive_seeds: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep needs a non-empty name")
        if not self.systems:
            raise ValueError("a sweep needs at least one system")
        for system in self.systems:
            if system not in KNOWN_SYSTEMS:
                raise ValueError(
                    f"unknown system {system!r}; expected one of {KNOWN_SYSTEMS}"
                )
        config_fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
        for axis in self.grid:
            if axis not in config_fields:
                raise ValueError(f"unknown grid axis {axis!r}")
        for point in self.points:
            for key in point:
                if key not in config_fields:
                    raise ValueError(f"unknown point override {key!r}")

    def _override_sets(self) -> List[Dict[str, object]]:
        combos: List[Dict[str, object]] = []
        if self.grid:
            axes = sorted(self.grid)
            for values in itertools.product(*(self.grid[axis] for axis in axes)):
                combos.append(dict(zip(axes, values)))
        combos.extend(dict(point) for point in self.points)
        if not combos:
            combos.append({})
        return combos

    def _config_for(self, overrides: Mapping[str, object]) -> ExperimentConfig:
        config = self.base.with_(**overrides) if overrides else self.base
        if not self.derive_seeds:
            return config
        offset = derive_seed_offset(overrides)
        seeds = {
            name: getattr(self.base, name) + offset
            for name in _SEED_FIELDS
            if name not in overrides
        }
        return config.with_(**seeds) if seeds else config

    def expand(self) -> List[SweepPoint]:
        """All points of the sweep, in deterministic order."""
        expanded: List[SweepPoint] = []
        index = 0
        for overrides in self._override_sets():
            config = self._config_for(overrides)
            digest = config_hash(config)
            for system in self.systems:
                expanded.append(
                    SweepPoint(
                        sweep_name=self.name,
                        index=index,
                        system=system,
                        overrides=tuple(sorted(overrides.items())),
                        config=config,
                        config_hash=digest,
                    )
                )
                index += 1
        return expanded

    def num_points(self) -> int:
        """Number of points :meth:`expand` will produce."""
        grid_size = 1
        for values in self.grid.values():
            grid_size *= len(values)
        if not self.grid:
            grid_size = 0
        combos = grid_size + len(self.points)
        return max(combos, 1) * len(self.systems)
