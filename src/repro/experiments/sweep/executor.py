"""Process-parallel execution of sweep points.

One sweep point is one scenario run; points are independent, so a
Figure-15b-style scale curve runs N-wide across worker processes instead
of serially.  Execution is deterministic regardless of parallelism: every
point carries its own derived seeds, workers receive fully resolved
:class:`~repro.experiments.sweep.grid.SweepPoint` objects, and results
come back in point order whatever the completion order was.

A point that raises is captured -- traceback and all -- as a failed
:class:`PointResult` instead of poisoning the pool, so one pathological
parameter combination cannot take down a 100-point sweep.
"""

from __future__ import annotations

import functools
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.runner import run_random_scenario, run_telecast_scenario
from repro.experiments.sweep.grid import SweepPoint, SweepSpec, _jsonable
from repro.experiments.sweep.store import ResultsStore, SweepRecord, git_describe, now


@dataclass(frozen=True)
class PointResult:
    """Outcome of executing one sweep point."""

    point_id: str
    sweep_name: str
    index: int
    system: str
    params: Dict[str, object]
    config_hash: str
    wall_clock_s: float
    metrics: Dict[str, float] = field(default_factory=dict)
    viewers_per_lsc: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the scenario ran to completion."""
        return self.error is None

    def to_record(self, git: str, created_at: float) -> SweepRecord:
        """Convert to the persisted store representation."""
        extra: Dict[str, object] = {}
        if self.viewers_per_lsc:
            extra["viewers_per_lsc"] = dict(self.viewers_per_lsc)
        return SweepRecord(
            sweep=self.sweep_name,
            point_id=self.point_id,
            system=self.system,
            params=_jsonable(self.params),
            config_hash=self.config_hash,
            git=git,
            created_at=created_at,
            wall_clock_s=self.wall_clock_s,
            metrics=dict(self.metrics),
            error=self.error,
            extra=extra,
        )


def execute_point(point: SweepPoint, *, snapshot_every: Optional[int] = None) -> PointResult:
    """Run one sweep point, capturing any failure as data.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it to worker processes.
    """
    started = time.perf_counter()
    try:
        if point.system == "telecast":
            result = run_telecast_scenario(point.config, snapshot_every=snapshot_every)
        elif point.system == "random":
            result = run_random_scenario(point.config, snapshot_every=snapshot_every)
        else:
            raise ValueError(f"unknown system {point.system!r}")
        metrics = result.metrics.summary()
        snapshot = result.final_snapshot
        metrics["cdn_outbound_mbps"] = result.cdn_outbound_mbps
        metrics["cdn_fraction"] = snapshot.cdn_fraction
        metrics["connected_viewers"] = snapshot.num_viewers
        metrics["num_requests"] = snapshot.num_requests
        metrics["active_subscriptions"] = snapshot.active_subscriptions
        return PointResult(
            point_id=point.point_id,
            sweep_name=point.sweep_name,
            index=point.index,
            system=point.system,
            params=point.params(),
            config_hash=point.config_hash,
            wall_clock_s=time.perf_counter() - started,
            metrics=metrics,
            viewers_per_lsc=result.viewers_per_lsc,
        )
    except Exception:
        return PointResult(
            point_id=point.point_id,
            sweep_name=point.sweep_name,
            index=point.index,
            system=point.system,
            params=point.params(),
            config_hash=point.config_hash,
            wall_clock_s=time.perf_counter() - started,
            error=traceback.format_exc(),
        )


@dataclass
class SweepResult:
    """All point results of one sweep run, in point order."""

    spec: SweepSpec
    results: List[PointResult] = field(default_factory=list)
    jobs: int = 1
    wall_clock_s: float = 0.0
    #: Paths records were appended to (one per sweep family, usually one).
    stored_in: List[str] = field(default_factory=list)

    def ok(self) -> List[PointResult]:
        """Points that ran to completion."""
        return [result for result in self.results if result.ok]

    def failed(self) -> List[PointResult]:
        """Points that raised (error carries the traceback)."""
        return [result for result in self.results if not result.ok]

    def metrics_by_point(self) -> Dict[str, Dict[str, float]]:
        """point_id -> metrics summary of successful points."""
        return {result.point_id: dict(result.metrics) for result in self.ok()}


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    snapshot_every: Optional[int] = None,
    progress: Optional[Callable[[PointResult], None]] = None,
) -> SweepResult:
    """Execute every point of a sweep, optionally persisting the records.

    ``jobs <= 1`` runs in-process (no pool, easiest to debug); larger
    values fan points out over a :class:`ProcessPoolExecutor`.  Results
    are identical either way -- parallelism only changes wall-clock time.
    """
    points = spec.expand()
    started = time.perf_counter()
    if jobs <= 1 or len(points) <= 1:
        results = []
        for point in points:
            result = execute_point(point, snapshot_every=snapshot_every)
            if progress is not None:
                progress(result)
            results.append(result)
    else:
        worker = functools.partial(execute_point, snapshot_every=snapshot_every)
        with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
            results = []
            for result in pool.map(worker, points):
                if progress is not None:
                    progress(result)
                results.append(result)
    sweep_result = SweepResult(
        spec=spec,
        results=results,
        jobs=jobs,
        wall_clock_s=time.perf_counter() - started,
    )
    if store is not None:
        describe = git_describe()
        created = now()
        paths = []
        for result in results:
            paths.append(str(store.append(result.to_record(describe, created))))
        sweep_result.stored_in = sorted(set(paths))
    return sweep_result
