"""Compare a sweep run against a stored baseline and report regressions.

The durable half of the sweep subsystem: once a JSONL baseline is checked
in, every subsequent run can be diffed point-by-point.  Points are matched
on their stable ``point_id``; for every match the report carries the delta
of each shared scalar metric, and a *regression* is flagged when

* a point errors that previously succeeded,
* a baseline point is missing from the current run, or
* a "higher is better" quality metric (acceptance ratios) drops by more
  than the tolerance.

Config-hash drift (same point id produced by a changed configuration --
e.g. a new ``ExperimentConfig`` field) is reported as a warning, not a
regression: the deltas are still shown, but the baseline should be
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.sweep.store import SweepRecord, latest_generation

#: Metrics where a drop beyond tolerance is a regression (higher = better).
QUALITY_METRICS: Tuple[str, ...] = ("acceptance_ratio", "request_acceptance_ratio")

#: Default allowed absolute drop of a quality metric before it regresses.
DEFAULT_TOLERANCE = 0.02


@dataclass(frozen=True)
class PointComparison:
    """Baseline-vs-current deltas of one matched sweep point."""

    point_id: str
    #: metric -> (baseline value, current value, current - baseline).
    deltas: Dict[str, Tuple[float, float, float]]
    regressed_metrics: Tuple[str, ...] = ()
    config_drift: bool = False
    error: str = ""

    @property
    def regressed(self) -> bool:
        """Whether this point counts as a regression."""
        return bool(self.regressed_metrics) or bool(self.error)


@dataclass
class CompareReport:
    """Full outcome of comparing two record sets."""

    baseline_label: str
    current_label: str
    tolerance: float
    comparisons: List[PointComparison] = field(default_factory=list)
    missing_points: List[str] = field(default_factory=list)
    new_points: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[PointComparison]:
        """Matched points that regressed."""
        return [comparison for comparison in self.comparisons if comparison.regressed]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no baseline point went missing."""
        return not self.regressions and not self.missing_points


def compare_records(
    baseline: List[SweepRecord],
    current: List[SweepRecord],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> CompareReport:
    """Diff the newest generation of two record sets point-by-point."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    base_by_id = latest_generation(baseline)
    current_by_id = latest_generation(current)
    report = CompareReport(
        baseline_label=baseline_label,
        current_label=current_label,
        tolerance=tolerance,
    )
    report.missing_points = sorted(set(base_by_id) - set(current_by_id))
    report.new_points = sorted(set(current_by_id) - set(base_by_id))
    for point_id in sorted(set(base_by_id) & set(current_by_id)):
        base = base_by_id[point_id]
        cur = current_by_id[point_id]
        drift = bool(base.config_hash and cur.config_hash) and (
            base.config_hash != cur.config_hash
        )
        if drift:
            report.warnings.append(
                f"{point_id}: config hash drifted "
                f"({base.config_hash} -> {cur.config_hash}); regenerate the baseline"
            )
        error = ""
        if cur.error and not base.error:
            error = f"point now fails: {cur.error.strip().splitlines()[-1]}"
        deltas: Dict[str, Tuple[float, float, float]] = {}
        regressed: List[str] = []
        for metric in sorted(set(base.metrics) & set(cur.metrics)):
            before = float(base.metrics[metric])
            after = float(cur.metrics[metric])
            deltas[metric] = (before, after, after - before)
            if metric in QUALITY_METRICS and before - after > tolerance:
                regressed.append(metric)
        report.comparisons.append(
            PointComparison(
                point_id=point_id,
                deltas=deltas,
                regressed_metrics=tuple(regressed),
                config_drift=drift,
                error=error,
            )
        )
    return report


#: Metrics shown in the per-point table of the text report.
_REPORT_METRICS: Tuple[str, ...] = (
    "acceptance_ratio",
    "cdn_fraction",
    "cdn_outbound_mbps",
    "join_delay_p95",
)


def format_compare_report(report: CompareReport) -> str:
    """Render a comparison as an aligned text report."""
    lines = [
        f"Sweep comparison: {report.current_label} vs {report.baseline_label} "
        f"(tolerance {report.tolerance:g})"
    ]
    header = ["point", "metric", "baseline", "current", "delta"]
    rows: List[List[str]] = [header]
    for comparison in report.comparisons:
        for metric in _REPORT_METRICS:
            if metric not in comparison.deltas:
                continue
            before, after, delta = comparison.deltas[metric]
            marker = " <-- REGRESSION" if metric in comparison.regressed_metrics else ""
            rows.append(
                [
                    comparison.point_id,
                    metric,
                    f"{before:.4f}",
                    f"{after:.4f}",
                    f"{delta:+.4f}{marker}",
                ]
            )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for row in rows:
        lines.append(
            "  " + "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
    for comparison in report.comparisons:
        if comparison.error:
            lines.append(f"  {comparison.point_id}: {comparison.error}")
    for point_id in report.missing_points:
        lines.append(f"  missing from current run: {point_id}")
    for point_id in report.new_points:
        lines.append(f"  new point (no baseline): {point_id}")
    for warning in report.warnings:
        lines.append(f"  warning: {warning}")
    verdict = "OK" if report.ok else (
        f"REGRESSIONS: {len(report.regressions)} point(s), "
        f"{len(report.missing_points)} missing"
    )
    lines.append(verdict)
    return "\n".join(lines)
