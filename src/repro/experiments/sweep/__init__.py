"""Parameter sweeps at scale: declarative grids, parallel execution,
persistent results and regression comparison.

The paper's evaluation is a family of parameter sweeps (audience size,
outbound bandwidth, CDN capacity -- Section VII, Figures 13-15).  This
subsystem makes such families first-class:

* :mod:`~repro.experiments.sweep.grid` -- :class:`SweepSpec` declares a
  cartesian grid plus explicit points over :class:`ExperimentConfig`,
  with stable per-point seed derivation and config hashing,
* :mod:`~repro.experiments.sweep.executor` -- :func:`run_sweep` fans the
  points out over worker processes with per-point failure capture,
* :mod:`~repro.experiments.sweep.store` -- append-only JSONL records
  under ``results/`` carrying config hash, git describe and the full
  metrics summary,
* :mod:`~repro.experiments.sweep.compare` -- point-by-point regression
  reports against a stored baseline,
* :mod:`~repro.experiments.sweep.presets` -- the named sweep families
  behind ``python -m repro.experiments sweep``.
"""

from repro.experiments.sweep.compare import (
    CompareReport,
    DEFAULT_TOLERANCE,
    PointComparison,
    compare_records,
    format_compare_report,
)
from repro.experiments.sweep.executor import PointResult, SweepResult, execute_point, run_sweep
from repro.experiments.sweep.grid import (
    SweepPoint,
    SweepSpec,
    config_hash,
    derive_seed_offset,
)
from repro.experiments.sweep.presets import (
    bandwidth_sweep,
    controlplane_sweep,
    named_sweeps,
    scale10k_sweep,
    scale_sweep,
    scenarios_sweep,
    shard_sweep,
    smoke_sweep,
)
from repro.experiments.sweep.store import (
    ResultsStore,
    SweepRecord,
    git_describe,
    latest_generation,
    load_records,
)

__all__ = [
    "CompareReport",
    "DEFAULT_TOLERANCE",
    "PointComparison",
    "PointResult",
    "ResultsStore",
    "SweepPoint",
    "SweepRecord",
    "SweepResult",
    "SweepSpec",
    "bandwidth_sweep",
    "compare_records",
    "controlplane_sweep",
    "config_hash",
    "derive_seed_offset",
    "execute_point",
    "format_compare_report",
    "git_describe",
    "latest_generation",
    "load_records",
    "named_sweeps",
    "run_sweep",
    "scale10k_sweep",
    "scale_sweep",
    "scenarios_sweep",
    "shard_sweep",
    "smoke_sweep",
]
