"""Persistent JSONL results store for sweep runs.

Every executed sweep point appends one self-describing JSON line to
``results/<sweep-name>.jsonl``: the point identity (sweep, ordinal,
system, config hash), the provenance (``git describe``, wall-clock
timestamp), the per-point runtime and the full scalar metrics summary.
Records are append-only -- re-running a sweep adds a new generation
rather than rewriting history -- and :func:`latest_generation` recovers
the newest record per point for comparisons.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Bumped whenever the record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default directory sweep records are persisted under.
DEFAULT_RESULTS_DIR = Path("results")


def git_describe(cwd: Optional[Path] = None) -> str:
    """``git describe --always --dirty`` of the working tree, or ``unknown``.

    Stored with every record so a regression report can name the exact
    code state that produced each side.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    output = completed.stdout.strip()
    return output if completed.returncode == 0 and output else "unknown"


@dataclass(frozen=True)
class SweepRecord:
    """One persisted sweep-point result."""

    sweep: str
    point_id: str
    system: str
    params: Dict[str, object]
    config_hash: str
    git: str
    created_at: float
    wall_clock_s: float
    metrics: Dict[str, float]
    error: Optional[str] = None
    schema: int = SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the point ran to completion."""
        return self.error is None

    def to_json(self) -> str:
        """One JSONL line (no trailing newline)."""
        payload = {
            "schema": self.schema,
            "sweep": self.sweep,
            "point_id": self.point_id,
            "system": self.system,
            "params": self.params,
            "config_hash": self.config_hash,
            "git": self.git,
            "created_at": self.created_at,
            "wall_clock_s": self.wall_clock_s,
            "metrics": self.metrics,
            "error": self.error,
        }
        if self.extra:
            payload["extra"] = self.extra
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "SweepRecord":
        """Parse one JSONL line back into a record."""
        payload = json.loads(line)
        return cls(
            sweep=payload["sweep"],
            point_id=payload["point_id"],
            system=payload.get("system", "telecast"),
            params=payload.get("params", {}),
            config_hash=payload.get("config_hash", ""),
            git=payload.get("git", "unknown"),
            created_at=payload.get("created_at", 0.0),
            wall_clock_s=payload.get("wall_clock_s", 0.0),
            metrics=payload.get("metrics", {}),
            error=payload.get("error"),
            schema=payload.get("schema", SCHEMA_VERSION),
            extra=payload.get("extra", {}),
        )


class ResultsStore:
    """Append-only JSONL store rooted at a results directory."""

    def __init__(self, root: Union[str, Path] = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, sweep_name: str) -> Path:
        """The JSONL file holding one sweep family's records."""
        return self.root / f"{sweep_name}.jsonl"

    def append(self, record: SweepRecord) -> Path:
        """Append one record; creates the results directory on demand."""
        path = self.path_for(record.sweep)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
        return path

    def load(self, sweep_name: str) -> List[SweepRecord]:
        """All records of a sweep family, oldest first."""
        return load_records(self.path_for(sweep_name))


def load_records(path: Union[str, Path]) -> List[SweepRecord]:
    """Parse a JSONL results file (empty list when it does not exist)."""
    file_path = Path(path)
    if not file_path.exists():
        return []
    records: List[SweepRecord] = []
    with file_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SweepRecord.from_json(line))
    return records


def latest_generation(records: List[SweepRecord]) -> Dict[str, SweepRecord]:
    """The newest record per point id (file order breaks timestamp ties)."""
    latest: Dict[str, SweepRecord] = {}
    for record in records:  # later lines win: the file is append-only
        latest[record.point_id] = record
    return latest


def now() -> float:
    """Wall-clock timestamp recorded on new records (UTC Unix seconds)."""
    return time.time()
