"""Figure 13(b): fraction of stream requests served by the CDN.

Paper observation: with the CDN capped at 6000 Mbps, the fraction of
requests served by the CDN falls as viewers contribute more outbound
bandwidth; when every viewer contributes at least 8 Mbps (or 4-14 Mbps
uniformly), 55% or more of the requests are served by the P2P layer.
"""

from __future__ import annotations

from repro.experiments.figures import figure_13b_cdn_fraction
from repro.experiments.reporting import format_scaling_figure
from repro.traces.workload import BandwidthDistribution

SETTINGS = (
    BandwidthDistribution.fixed(0.0),
    BandwidthDistribution.fixed(4.0),
    BandwidthDistribution.fixed(8.0),
    BandwidthDistribution.fixed(10.0),
    BandwidthDistribution.uniform(0.0, 12.0),
    BandwidthDistribution.uniform(4.0, 14.0),
)


def test_fig13b_cdn_fraction(benchmark, bench_config, bench_step):
    figure = benchmark.pedantic(
        figure_13b_cdn_fraction,
        kwargs={
            "config": bench_config,
            "bandwidth_settings": SETTINGS,
            "step": bench_step,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_scaling_figure(figure))

    final = {series.label: series.final_value() for series in figure.series}
    # With no contribution, everything that is served comes from the CDN.
    assert final["C_obw=0"] == 1.0
    # More viewer contribution means a smaller CDN share.
    assert final["C_obw=4"] > final["C_obw=8"] > final["C_obw=10"]
    # The paper's crossover: at >= 8 Mbps per viewer the P2P layer serves
    # the majority (55% or more) of the requests.
    assert final["C_obw=8"] <= 0.45
    assert final["C_obw=4-14"] <= 0.45
