"""Event-driven data-plane benchmark (simulated vs offline frame replay).

The simulated data plane turns the offline constant-delay replay into
typed data messages on the event engine, adding per-edge bandwidth
serialization, loss and QoE playout accounting.  That machinery must stay
cheap -- the per-frame record/buffer work dominates either way -- and it
must preserve the paper's view-synchronization property.

This benchmark builds one joins-only scenario, replays the full synthetic
TEEVE trace through the built overlay twice -- once with the offline
:class:`~repro.core.dataplane.OverlayDataPlane`, once with the simulated
:class:`~repro.core.dataplane.SimulatedDataPlane` at zero loss -- and
emits the machine-readable ``BENCH_dataplane.json`` record.  The script
exits non-zero when

* the simulated replay is more than ``--max-slowdown`` (default 2x)
  slower than the offline replay in wall-clock time,
* the two replays disagree on delivery counts or total delay mass
  (parity: at zero extra transit, zero loss and unconstrained bandwidth
  the simulated plane must reproduce the offline schedule), or
* fewer than ``--skew-fraction`` (default 99%) of multi-stream viewers
  observe a renderer-visible inter-stream skew within ``d_buff`` at zero
  loss (Layer Property 2, measured on delivered frames).

A small loss sweep (report-only, truncated trace) is appended to the
record; it is the data behind the skew-vs-``d_buff`` table in
``docs/BENCHMARKS.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataplane.py
    PYTHONPATH=src python benchmarks/bench_dataplane.py --viewers 300 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.dataplane import DataPlaneConfig, OverlayDataPlane, SimulatedDataPlane
from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.runner import build_scenario, build_telecast_system
from repro.sim.rng import SeededRandom
from repro.traces.teeve import TeeveSessionTrace

#: Population of the benchmark scenario (the acceptance gate scale).
DEFAULT_VIEWERS = 1000

#: Allowed wall-clock factor of the simulated over the offline replay.
DEFAULT_MAX_SLOWDOWN = 2.0

#: Required fraction of multi-stream viewers with skew <= d_buff.
DEFAULT_SKEW_FRACTION = 0.99

#: Loss rates of the report-only QoE sweep.
LOSS_SWEEP = (0.0, 0.02, 0.05)

#: Frames per stream of the report-only QoE sweep (the gated legs replay
#: the full trace).
LOSS_SWEEP_FRAMES = 200


def _config(num_viewers: int) -> ExperimentConfig:
    return PAPER_CONFIG.with_scaled_population(num_viewers, num_lscs=3)


def _built_system(config: ExperimentConfig):
    """A TeleCast system with the whole population joined (untimed setup)."""
    scenario = build_scenario(config)
    system = build_telecast_system(scenario)
    system.run_workload(scenario.viewers, scenario.events, scenario.views)
    trace = TeeveSessionTrace(scenario.producers, rng=SeededRandom(config.seed))
    return system, trace


def _offline_leg(config: ExperimentConfig, max_frames: Optional[int]) -> Dict[str, float]:
    system, trace = _built_system(config)
    started = time.perf_counter()
    report = OverlayDataPlane(system, trace).replay(max_frames_per_stream=max_frames)
    elapsed = time.perf_counter() - started
    deliveries = report.deliveries
    return {
        "engine": "offline",
        "wall_clock_s": round(elapsed, 4),
        "deliveries": len(deliveries),
        "delay_mass_s": round(sum(d.end_to_end_delay for d in deliveries), 3),
    }


def _simulated_leg(
    config: ExperimentConfig,
    max_frames: Optional[int],
    *,
    loss_rate: float = 0.0,
    bandwidth_headroom: Optional[float] = None,
    refresh_interval: Optional[float] = None,
) -> Dict[str, float]:
    system, trace = _built_system(config)
    plane = SimulatedDataPlane(
        system,
        trace,
        DataPlaneConfig(
            loss_rate=loss_rate,
            bandwidth_headroom=bandwidth_headroom,
            transit_delay_scale=0.0,
            refresh_interval=refresh_interval,
            max_frames_per_stream=max_frames,
        ),
    )
    started = time.perf_counter()
    report = plane.run()
    elapsed = time.perf_counter() - started
    deliveries = report.deliveries
    skews = report.playout_skews()
    continuities = report.continuities()
    return {
        "engine": "simulated",
        "loss_rate": loss_rate,
        "bandwidth_headroom": bandwidth_headroom,
        "wall_clock_s": round(elapsed, 4),
        "deliveries": len(deliveries),
        "delay_mass_s": round(sum(d.end_to_end_delay for d in deliveries), 3),
        "frames_sent": report.frames_sent,
        "frames_lost": report.frames_lost,
        "frames_late": report.frames_late,
        "frames_dropped": report.frames_dropped,
        "continuity_mean": round(sum(continuities) / len(continuities), 4)
        if continuities
        else 1.0,
        "skew_within_dbuff": round(report.skew_within_dbuff_fraction(), 4),
        "playout_skew_max_ms": round(max(skews) * 1000, 1) if skews else 0.0,
        "layer_adjustments": report.layer_adjustments,
        "streams_dropped": report.streams_dropped,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--viewers",
        type=int,
        default=DEFAULT_VIEWERS,
        help="population of the benchmark scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=DEFAULT_MAX_SLOWDOWN,
        help="allowed simulated/offline wall-clock factor (default: %(default)s)",
    )
    parser.add_argument(
        "--skew-fraction",
        type=float,
        default=DEFAULT_SKEW_FRACTION,
        help="required fraction of viewers with skew <= d_buff (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate the gated legs to 200 frames per stream (local iteration)",
    )
    parser.add_argument(
        "--record",
        default="BENCH_dataplane.json",
        help="where to write the JSON record (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.viewers <= 0:
        parser.error("--viewers must be > 0")
    if args.max_slowdown <= 0:
        parser.error("--max-slowdown must be > 0")
    if not (0.0 < args.skew_fraction <= 1.0):
        parser.error("--skew-fraction must be in (0, 1]")

    config = _config(args.viewers)
    max_frames = LOSS_SWEEP_FRAMES if args.quick else None
    offline = _offline_leg(config, max_frames)
    simulated = _simulated_leg(config, max_frames)
    slowdown = (
        simulated["wall_clock_s"] / offline["wall_clock_s"]
        if offline["wall_clock_s"] > 0
        else float("inf")
    )
    loss_sweep = [
        _simulated_leg(
            config,
            LOSS_SWEEP_FRAMES,
            loss_rate=loss_rate,
            bandwidth_headroom=1.0,
            refresh_interval=5.0,
        )
        for loss_rate in LOSS_SWEEP
    ]

    d_buff = config.buffer_duration
    record = {
        "benchmark": "dataplane",
        "num_viewers": args.viewers,
        "full_trace": not args.quick,
        "d_buff_s": d_buff,
        "offline": offline,
        "simulated": simulated,
        "slowdown": round(slowdown, 3),
        "max_slowdown": args.max_slowdown,
        "skew_fraction_gate": args.skew_fraction,
        "loss_sweep": loss_sweep,
    }
    Path(args.record).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(f"population                  : {args.viewers} viewers, 3 LSCs")
    print(
        f"offline replay              : {offline['wall_clock_s'] * 1000:9.1f} ms "
        f"({offline['deliveries']} deliveries)"
    )
    print(
        f"simulated replay            : {simulated['wall_clock_s'] * 1000:9.1f} ms "
        f"({simulated['deliveries']} deliveries)"
    )
    print(
        f"slowdown (simulated/offline): {slowdown:9.2f}x (gate: <= {args.max_slowdown}x)"
    )
    print(
        f"skew within d_buff          : {simulated['skew_within_dbuff']:9.2%} "
        f"(gate: >= {args.skew_fraction:.0%} at zero loss)"
    )
    print("loss sweep (headroom=1.0, refresh on, 200 frames/stream):")
    print("  loss   continuity  skew<=d_buff  max playout skew")
    for leg in loss_sweep:
        print(
            f"  {leg['loss_rate']:<5.0%}  {leg['continuity_mean']:<10.4f}  "
            f"{leg['skew_within_dbuff']:<12.2%}  {leg['playout_skew_max_ms']:.0f} ms"
        )
    print(f"record written to           : {args.record}")

    failures = []
    if slowdown > args.max_slowdown:
        failures.append(
            f"simulated replay is {slowdown:.2f}x slower than offline "
            f"(gate: {args.max_slowdown}x)"
        )
    if simulated["deliveries"] != offline["deliveries"]:
        failures.append(
            f"delivery count parity broken: offline {offline['deliveries']} "
            f"!= simulated {simulated['deliveries']}"
        )
    mass_drift = abs(simulated["delay_mass_s"] - offline["delay_mass_s"])
    if mass_drift > 1e-3 * max(1.0, offline["delay_mass_s"]):
        failures.append(
            f"delivery delay mass drifted {mass_drift:.3f}s between engines"
        )
    if simulated["skew_within_dbuff"] < args.skew_fraction:
        failures.append(
            f"only {simulated['skew_within_dbuff']:.2%} of viewers within d_buff "
            f"(gate: {args.skew_fraction:.0%})"
        )
    for failure in failures:
        print(f"FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
