"""Figure 14(a): distribution of delay layers at the viewers.

Paper observation: with outbound capacity uniform in 0-12 Mbps, about 30%
of viewers receive all their accepted streams in Layer-0 (directly from
the CDN) and about 80% are in Layer-4 or less; the tail extends to roughly
Layer-18.
"""

from __future__ import annotations

from repro.experiments.figures import figure_14a_layer_distribution
from repro.experiments.reporting import format_distribution_figure


def test_fig14a_layer_distribution(benchmark, bench_config):
    figure = benchmark.pedantic(
        figure_14a_layer_distribution,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_distribution_figure(figure, thresholds=(0.0, 4.0)))

    samples = figure.samples["max_layer"]
    assert samples, "no connected viewers in the layer experiment"
    # A substantial fraction of viewers watches everything fresh (Layer-0).
    assert figure.fraction_at_most("max_layer", 0.0) >= 0.1
    # Most viewers stay within a handful of layers (paper: ~80% <= Layer-4).
    assert figure.fraction_at_most("max_layer", 4.0) >= 0.6
    # The layer bound implied by d_max is never exceeded.
    assert max(samples) <= bench_config.layer_config().max_layer_index
