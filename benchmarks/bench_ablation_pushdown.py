"""Ablation: degree push-down vs. naive first-fit tree insertion.

The degree push-down algorithm places high out-degree viewers near the
root, which flattens the tree.  This ablation inserts the same synthetic
population into a stream tree with and without push-down (first-fit simply
takes the shallowest free slot in arrival order) and compares the depth of
the resulting trees -- shallower trees mean fresher layers and fewer
delay-bound violations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.topology import StreamTree
from repro.model.producer import make_default_producers
from repro.net.latency import DelayModel, LatencyMatrix
from repro.sim.rng import SeededRandom


def _population(size: int, seed: int) -> List[Tuple[str, int, float]]:
    rng = SeededRandom(seed)
    population = []
    for index in range(size):
        capacity = rng.uniform(0.0, 12.0)
        degree = int(capacity // 2.0) % 4
        population.append((f"viewer-{index:04d}", degree, capacity))
    return population


def _build_tree(*, pushdown: bool, population, d_max: float = 10_000.0) -> StreamTree:
    producers = make_default_producers()
    stream = producers[0].streams[0]
    delay_model = DelayModel(LatencyMatrix(default_delay=0.05), processing_delay=0.1, cdn_delta=60.0)
    tree = StreamTree(stream, delay_model, d_max=d_max)
    for node_id, degree, capacity in population:
        if pushdown:
            tree.insert(node_id, degree, capacity, allow_cdn=tree.free_p2p_slots() == 0)
        else:
            # First-fit: take the shallowest free slot, never displace anyone.
            parent = _shallowest_free_parent(tree)
            if parent is None:
                tree.attach_under(node_id, tree.root.node_id, degree, capacity)
            else:
                tree.attach_under(node_id, parent, degree, capacity)
    return tree


def _shallowest_free_parent(tree: StreamTree):
    frontier = list(tree.root.children)
    while frontier:
        for node_id in frontier:
            if tree.node(node_id).free_slots > 0:
                return node_id
        next_frontier = []
        for node_id in frontier:
            next_frontier.extend(tree.node(node_id).children)
        frontier = next_frontier
    return None


def test_ablation_degree_pushdown(benchmark):
    population = _population(600, seed=13)

    def run_both():
        with_pushdown = _build_tree(pushdown=True, population=population)
        without_pushdown = _build_tree(pushdown=False, population=population)
        return with_pushdown, without_pushdown

    with_pushdown, without_pushdown = benchmark.pedantic(run_both, rounds=1, iterations=1)

    depth_with = max(with_pushdown.depth_of(n) for n in with_pushdown.members())
    depth_without = max(without_pushdown.depth_of(n) for n in without_pushdown.members())
    mean_with = sum(with_pushdown.depth_of(n) for n in with_pushdown.members()) / len(
        with_pushdown.members()
    )
    mean_without = sum(
        without_pushdown.depth_of(n) for n in without_pushdown.members()
    ) / len(without_pushdown.members())
    print()
    print(f"  degree push-down : max depth {depth_with}, mean depth {mean_with:.2f}")
    print(f"  first-fit        : max depth {depth_without}, mean depth {mean_without:.2f}")

    with_pushdown.validate()
    without_pushdown.validate()
    # Push-down produces trees that are no deeper on average, and both
    # strategies accept the same population when the delay bound is loose.
    assert len(with_pushdown.members()) == len(without_pushdown.members())
    assert mean_with <= mean_without + 1e-9
