"""Figure 15(b): 4D TeleCast vs. Random routing as the audience scales.

Paper observation: with viewers contributing 2-14 Mbps of outbound
bandwidth, 4D TeleCast sustains a 98-99% acceptance ratio as the audience
grows to 1000 viewers, while the Random scheme degrades into the 80-88%
range.
"""

from __future__ import annotations

from repro.experiments.figures import figure_15b_vs_random_scale
from repro.experiments.reporting import format_scaling_figure


def test_fig15b_vs_random_scale(benchmark, bench_config, bench_step):
    figure = benchmark.pedantic(
        figure_15b_vs_random_scale,
        kwargs={"config": bench_config, "step": bench_step},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_scaling_figure(figure))

    telecast = figure.series_by_label("TeleCast")
    random_series = figure.series_by_label("Random")
    # TeleCast sustains near-perfect acceptance at the largest population.
    assert telecast.final_value() >= 0.97
    # Random degrades below TeleCast as the population grows.
    assert random_series.final_value() <= telecast.final_value() - 0.05
    # Random's acceptance does not improve with scale (weakly decreasing trend).
    assert random_series.final_value() <= random_series.values[0] + 1e-9
    # TeleCast never loses to Random at any population size.
    for telecast_value, random_value in zip(telecast.values, random_series.values):
        assert telecast_value >= random_value - 0.02
