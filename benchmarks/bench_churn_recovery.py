"""Churn recovery: incremental subtree repair vs. rejoin-from-scratch.

Not a figure of the paper: this benchmark quantifies the recovery
subsystem added for the "large-scale simultaneous viewer arrivals or
departures" scenario.  A 500-viewer session is built twice from the same
seeds; in each copy the same heavily-forwarding viewers fail abruptly one
after another.  The first copy repairs the stranded subtrees incrementally
(orphans are re-parented in place in degree push-down order, CDN only as a
last resort); the second tears every affected subtree down and pushes each
viewer through the full join pipeline again.  Incremental repair must win
on wall-clock time -- it touches only the orphans instead of every
descendant -- while recovering at least as many subscriptions.
"""

from __future__ import annotations

import time

from repro.core import RepairStrategy
from repro.core.telecast import TeleCastSystem, build_views
from repro.experiments.config import PAPER_CONFIG
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom
from repro.traces.workload import ViewerWorkload, WorkloadConfig

#: The acceptance scenario is pinned to a 500-viewer session.
NUM_VIEWERS = 500
#: How many forwarding viewers fail, one after another.
NUM_FAILURES = 25


def _build_session() -> TeleCastSystem:
    """One fully-joined 500-viewer session (identical across calls)."""
    config = PAPER_CONFIG.with_(
        num_viewers=NUM_VIEWERS,
        cdn_capacity_mbps=PAPER_CONFIG.cdn_capacity_mbps
        * NUM_VIEWERS
        / PAPER_CONFIG.num_viewers,
    )
    producers = make_default_producers(
        config.num_sites,
        config.cameras_per_site,
        stream_bandwidth_mbps=config.stream_bandwidth_mbps,
        frame_rate=config.frame_rate,
    )
    workload = ViewerWorkload(
        WorkloadConfig(num_viewers=config.num_viewers, outbound=config.outbound),
        rng=SeededRandom(config.seed),
    )
    viewers = workload.viewers()
    matrix = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in viewers] + ["GSC", "LSC-0", "CDN"],
        rng=SeededRandom(config.latency_seed),
    )
    delay_model = DelayModel(
        matrix,
        processing_delay=config.processing_delay,
        cdn_delta=config.cdn_delta,
        control_processing_delay=config.control_processing_delay,
    )
    cdn = CDN(config.cdn_capacity_mbps, delta=config.cdn_delta)
    system = TeleCastSystem(producers, cdn, delay_model, config.layer_config())
    views = build_views(
        producers,
        num_views=config.num_views,
        streams_per_site=config.streams_per_site_in_view,
    )
    by_view = {
        viewer.viewer_id: views[index % len(views)]
        for index, viewer in enumerate(viewers)
    }
    for viewer in viewers:
        system.join_viewer(viewer, by_view[viewer.viewer_id])
    return system


def _pick_victims(system: TeleCastSystem) -> list:
    """The most heavily forwarding viewers (their failure strands the most)."""
    fanout = {}
    for lsc in system.gsc.lscs:
        for viewer_id, session in lsc.sessions.items():
            fanout[viewer_id] = sum(
                len(session.routing_table.children_of(stream_id))
                for stream_id in session.subscriptions
            )
    ranked = sorted(fanout, key=lambda vid: (-fanout[vid], vid))
    return [vid for vid in ranked if fanout[vid] > 0][:NUM_FAILURES]


def _run_failures(strategy: RepairStrategy):
    """Fail the victim set under one strategy; returns (seconds, metrics)."""
    system = _build_session()
    victims = _pick_victims(system)
    assert len(victims) == NUM_FAILURES
    started = time.perf_counter()
    for victim in victims:
        system.fail_viewer(victim, strategy=strategy)
    elapsed = time.perf_counter() - started
    return elapsed, system.metrics, system


def test_incremental_repair_beats_full_rejoin():
    incremental_s, incremental_m, incremental_sys = _run_failures(
        RepairStrategy.INCREMENTAL
    )
    rejoin_s, rejoin_m, rejoin_sys = _run_failures(RepairStrategy.REJOIN)

    repaired = (
        incremental_m.repaired_subscriptions_p2p
        + incremental_m.repaired_subscriptions_cdn
    )
    print()
    print(f"failures injected            : {NUM_FAILURES} (of {NUM_VIEWERS} viewers)")
    print(
        f"incremental repair           : {incremental_s * 1000:8.1f} ms  "
        f"(repaired {repaired} subscriptions, "
        f"{incremental_m.repaired_subscriptions_p2p} via P2P, "
        f"lost {incremental_m.lost_repair_subscriptions})"
    )
    print(
        f"rejoin from scratch          : {rejoin_s * 1000:8.1f} ms  "
        f"(lost {rejoin_m.lost_repair_subscriptions} subscriptions)"
    )
    print(f"speedup                      : {rejoin_s / incremental_s:8.1f}x")

    # The headline claim: incremental repair is measurably faster than
    # tearing the subtrees down and rejoining every affected viewer.
    assert incremental_s < rejoin_s

    # And it is not buying speed with quality: no more subscriptions are
    # lost than under the full-rejoin baseline, and both sessions stay
    # internally consistent.
    assert (
        incremental_m.lost_repair_subscriptions <= rejoin_m.lost_repair_subscriptions
    )
    for system in (incremental_sys, rejoin_sys):
        for lsc in system.gsc.lscs:
            for group in lsc.groups.values():
                for tree in group.trees.values():
                    tree.validate()
