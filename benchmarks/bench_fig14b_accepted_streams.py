"""Figure 14(b): number of accepted streams per viewer.

Paper observation: with a 6000 Mbps CDN and 0-12 Mbps outbound capacity,
most viewers (above 70%) receive all 6 streams of their view; about 15% of
viewers receive none because of the bandwidth limitation; every connected
viewer receives at least one stream per producer site.
"""

from __future__ import annotations

from repro.experiments.figures import figure_14b_accepted_streams
from repro.experiments.reporting import format_distribution_figure


def test_fig14b_accepted_streams(benchmark, bench_config):
    figure = benchmark.pedantic(
        figure_14b_accepted_streams,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_distribution_figure(figure, thresholds=(0.0, 5.0)))

    samples = figure.samples["accepted_streams"]
    assert samples
    full_view = bench_config.streams_per_view
    fraction_full = sum(1 for value in samples if value >= full_view) / len(samples)
    fraction_none = sum(1 for value in samples if value == 0) / len(samples)
    # Most viewers receive the complete view (paper: above 70%).
    assert fraction_full >= 0.6
    # A minority is rejected outright by the bandwidth limitation (paper: ~15%).
    assert fraction_none <= 0.35
    # Connected viewers never receive fewer streams than producer sites.
    connected = [value for value in samples if value > 0]
    assert all(value >= bench_config.num_sites for value in connected)
