"""Parallel vs. serial sweep execution (not a paper figure).

The sweep subsystem promises that process-parallel execution changes
wall-clock time and nothing else.  This benchmark runs the same 6-point
scale sweep (3 populations x TeleCast/Random, 3 region-sharded LSCs)
serially and with two worker processes, asserts the metrics are
identical point for point, and emits the machine-readable
``BENCH_sweep.json`` perf-trajectory record: wall-clock per point, the
parallel speedup and the peak population swept.

The speedup itself is hardware-dependent (a single-core CI runner cannot
beat serial execution), so the assertion guards result parity and sanity
bounds, not a speedup floor; the JSON record is what tracks the
trajectory across commits.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.config import PAPER_CONFIG
from repro.experiments.sweep import SweepSpec, run_sweep

#: Population sizes of the benchmark sweep (CDN cap scales with each).
POPULATIONS = (100, 200, 300)

#: Worker processes of the parallel leg.
JOBS = 2


def _spec() -> SweepSpec:
    return SweepSpec(
        name="bench-sweep",
        base=PAPER_CONFIG,
        points=[
            {
                "num_viewers": count,
                "cdn_capacity_mbps": PAPER_CONFIG.with_scaled_population(
                    count
                ).cdn_capacity_mbps,
                "num_lscs": 3,
            }
            for count in POPULATIONS
        ],
        systems=("telecast", "random"),
    )


def test_parallel_sweep_matches_serial_and_records_trajectory():
    spec = _spec()
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=JOBS)

    assert not serial.failed() and not parallel.failed()
    # Parallelism must not change a single metric of a single point.
    assert serial.metrics_by_point() == parallel.metrics_by_point()

    speedup = serial.wall_clock_s / parallel.wall_clock_s
    record = {
        "benchmark": "sweep",
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "num_points": len(serial.results),
        "peak_viewers": max(POPULATIONS),
        "serial_wall_clock_s": round(serial.wall_clock_s, 4),
        "parallel_wall_clock_s": round(parallel.wall_clock_s, 4),
        "speedup": round(speedup, 3),
        "points": [
            {
                "point_id": point.point_id,
                "system": point.system,
                "num_viewers": point.params.get("num_viewers"),
                "wall_clock_s": round(point.wall_clock_s, 4),
                "acceptance_ratio": point.metrics["acceptance_ratio"],
            }
            for point in serial.results
        ],
    }
    Path("BENCH_sweep.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    print()
    print(f"points                       : {len(serial.results)} "
          f"(populations {list(POPULATIONS)} x {list(spec.systems)})")
    print(f"serial                       : {serial.wall_clock_s * 1000:8.1f} ms")
    print(f"parallel (--jobs {JOBS})         : {parallel.wall_clock_s * 1000:8.1f} ms")
    print(f"speedup                      : {speedup:8.2f}x on {os.cpu_count()} CPU(s)")

    # Sanity bounds: the pool must neither hang nor collapse.  A real
    # speedup needs >= 2 cores; on one core the pool overhead must stay
    # within 5x of serial (it is far lower in practice).
    assert 0.2 < speedup < 50.0
