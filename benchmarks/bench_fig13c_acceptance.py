"""Figure 13(c): request acceptance ratio with a capped CDN.

Paper observation: with the CDN bounded to 6000 Mbps, the acceptance ratio
is low when viewers contribute nothing (the CDN alone cannot carry the
demand), grows with viewer contribution, and becomes perfect when every
viewer contributes at least 8 Mbps or when contributions are uniform in
4-14 Mbps.
"""

from __future__ import annotations

from repro.experiments.figures import figure_13c_acceptance_ratio
from repro.experiments.reporting import format_scaling_figure
from repro.traces.workload import BandwidthDistribution

SETTINGS = (
    BandwidthDistribution.fixed(0.0),
    BandwidthDistribution.fixed(4.0),
    BandwidthDistribution.fixed(6.0),
    BandwidthDistribution.fixed(8.0),
    BandwidthDistribution.uniform(0.0, 12.0),
    BandwidthDistribution.uniform(4.0, 14.0),
)


def test_fig13c_acceptance_ratio(benchmark, bench_config, bench_step):
    figure = benchmark.pedantic(
        figure_13c_acceptance_ratio,
        kwargs={
            "config": bench_config,
            "bandwidth_settings": SETTINGS,
            "step": bench_step,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_scaling_figure(figure))

    final = {series.label: series.final_value() for series in figure.series}
    # No contribution: the capped CDN can only carry about half the demand.
    assert final["C_obw=0"] < 0.7
    # Acceptance improves monotonically with contribution.
    assert final["C_obw=0"] < final["C_obw=4"] < final["C_obw=8"]
    # The paper's headline: perfect acceptance at >= 8 Mbps and for 4-14 Mbps.
    assert final["C_obw=8"] >= 0.99
    assert final["C_obw=4-14"] >= 0.99
