"""Join-phase scale benchmark: 10k-viewer telecasts on the performance core.

The scenario is a *telecast broadcast*: every viewer requests the same
global view (the paper's large-scale simultaneous-arrival case), which
concentrates the whole population into one view group and makes the
overlay trees -- and therefore the placement data structures -- as large
as the audience.  The benchmark measures the wall clock of the join
phase (control-plane joins only, no snapshots) at increasing populations
and compares the indexed :class:`~repro.core.topology.StreamTree`
against the frozen pre-refactor implementation
(:class:`~repro.core._topology_reference.ReferenceStreamTree`) at 2k
viewers.

Output is the machine-readable ``BENCH_scale.json`` perf-trajectory
record.  The script exits non-zero when

* the indexed engine is not at least ``--min-speedup`` (default 5x)
  faster than the reference path at 2k viewers, or
* 2k-viewer join throughput regressed more than ``--max-regression``
  (default 2x) against the checked-in baseline record (CI gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full: 2k + 5k + 10k
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # CI: 2k only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import repro.core.group as group_module
from repro.core._topology_reference import ReferenceStreamTree
from repro.core.topology import StreamTree
from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.runner import build_scenario, build_telecast_system

#: Populations of the full benchmark (the --quick CI mode keeps only the first).
POPULATIONS = (2000, 5000, 10000)

#: Population at which the indexed engine is compared to the reference path.
REFERENCE_POPULATION = 2000

#: Required indexed-vs-reference join-phase speedup at 2k viewers.
DEFAULT_MIN_SPEEDUP = 5.0

#: Allowed throughput regression factor against the checked-in record.
DEFAULT_MAX_REGRESSION = 2.0


def _broadcast_config(num_viewers: int) -> ExperimentConfig:
    """The benchmark scenario: one headline view, region-sharded control plane."""
    return PAPER_CONFIG.with_scaled_population(num_viewers, num_lscs=3, num_views=1)


def _measure_join_phase(config: ExperimentConfig, tree_class) -> Dict[str, float]:
    """Build one scenario and time its join phase under ``tree_class``.

    The tree implementation is swapped at the single instantiation point
    (``repro.core.group``); everything else -- workload, latency world,
    controllers -- is byte-identical between the two legs.
    """
    scenario = build_scenario(config)
    original = group_module.StreamTree
    group_module.StreamTree = tree_class
    try:
        system = build_telecast_system(scenario)
        by_id = {viewer.viewer_id: viewer for viewer in scenario.viewers}
        events = sorted(scenario.events, key=lambda e: (e.time, e.viewer_id))
        joins = 0
        started = time.perf_counter()
        for event in events:
            if event.kind != "join":
                continue
            view = scenario.views[event.view_index % len(scenario.views)]
            system.join_viewer(by_id[event.viewer_id], view, event.time)
            joins += 1
        elapsed = time.perf_counter() - started
    finally:
        group_module.StreamTree = original
    snapshot = system.snapshot()
    return {
        "num_viewers": config.num_viewers,
        "joins": joins,
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "join_wall_clock_s": round(elapsed, 4),
        "joins_per_s": round(joins / elapsed, 2) if elapsed > 0 else float("inf"),
    }


def _load_baseline(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _baseline_throughput(baseline: Optional[dict]) -> Optional[float]:
    """2k-viewer joins/sec of the checked-in record, if present."""
    if not baseline:
        return None
    for point in baseline.get("points", []):
        if point.get("num_viewers") == REFERENCE_POPULATION:
            return point.get("joins_per_s")
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: only the {REFERENCE_POPULATION}-viewer point",
    )
    parser.add_argument(
        "--record",
        default="BENCH_scale.json",
        help="where to write the JSON record (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_scale.json",
        help="checked-in record to gate throughput against (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required speedup vs the reference tree at 2k (default: %(default)s)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed joins/sec regression factor vs the baseline (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    # Load the baseline before the record file is overwritten.
    baseline_throughput = _baseline_throughput(_load_baseline(Path(args.baseline)))

    populations = POPULATIONS[:1] if args.quick else POPULATIONS
    points = []
    for count in populations:
        point = _measure_join_phase(_broadcast_config(count), StreamTree)
        points.append(point)
        print(
            f"indexed   n={count:>6}: {point['join_wall_clock_s']:8.2f}s join phase, "
            f"{point['joins_per_s']:>9.1f} joins/s, "
            f"acceptance={point['acceptance_ratio']:.4f}"
        )

    reference = _measure_join_phase(
        _broadcast_config(REFERENCE_POPULATION), ReferenceStreamTree
    )
    print(
        f"reference n={REFERENCE_POPULATION:>6}: "
        f"{reference['join_wall_clock_s']:8.2f}s join phase, "
        f"{reference['joins_per_s']:>9.1f} joins/s (pre-refactor path)"
    )

    indexed_2k = points[0]
    speedup = (
        reference["join_wall_clock_s"] / indexed_2k["join_wall_clock_s"]
        if indexed_2k["join_wall_clock_s"] > 0
        else float("inf")
    )
    print(f"speedup vs pre-refactor path at {REFERENCE_POPULATION} viewers: {speedup:.1f}x")

    # Both legs must place every viewer identically (same acceptance).
    parity_ok = (
        reference["acceptance_ratio"] == indexed_2k["acceptance_ratio"]
        and reference["connected"] == indexed_2k["connected"]
    )
    if not parity_ok:
        print("FAIL: indexed and reference legs disagree on placement outcomes")

    record = {
        "benchmark": "scale",
        "quick": args.quick,
        # cpu_count reports the machine; this benchmark itself is
        # single-process (workers_used == 1 by construction).
        "cpu_count": os.cpu_count(),
        "workers_used": 1,
        "scenario": "telecast broadcast (num_views=1, num_lscs=3)",
        "points": points,
        "reference_2k": reference,
        "speedup_vs_reference_2k": round(speedup, 2),
    }
    Path(args.record).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(f"record written to {args.record}")

    failures = not parity_ok
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {args.min_speedup:.1f}x")
        failures = True
    if baseline_throughput:
        current = indexed_2k["joins_per_s"]
        floor = baseline_throughput / args.max_regression
        verdict = "ok" if current >= floor else "REGRESSION"
        print(
            f"throughput gate: {current:.1f} joins/s vs baseline "
            f"{baseline_throughput:.1f} (floor {floor:.1f}): {verdict}"
        )
        if current < floor:
            failures = True
    else:
        print("throughput gate: no baseline record found, skipping")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
