"""Shared fixtures for the figure-reproduction benchmark harness.

Every ``bench_fig*`` module regenerates one figure of the paper's
evaluation, prints the series it plots and asserts its qualitative shape.
The default population is the paper's maximum of 1000 viewers; set
``REPRO_BENCH_VIEWERS`` to a smaller value for a quicker (but less
faithful) run -- the shape assertions are calibrated for the full scale
and may not hold for very small populations.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PAPER_CONFIG, ExperimentConfig


def _bench_viewers() -> int:
    value = os.environ.get("REPRO_BENCH_VIEWERS", "1000")
    try:
        viewers = int(value)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"REPRO_BENCH_VIEWERS must be an integer, got {value!r}") from exc
    if viewers <= 0:
        raise ValueError("REPRO_BENCH_VIEWERS must be > 0")
    return viewers


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The paper's configuration scaled to the benchmark population size.

    The CDN capacity is scaled proportionally to the population so that
    the capped experiments keep the paper's supply/demand balance
    (6000 Mbps for 1000 viewers).
    """
    return PAPER_CONFIG.with_scaled_population(_bench_viewers())


@pytest.fixture(scope="session")
def bench_step(bench_config: ExperimentConfig) -> int:
    """Snapshot interval (in joins) used by the scaling figures."""
    return max(50, bench_config.num_viewers // 10)
