"""Micro-benchmarks of the core algorithms.

These time the hot operations of the control plane -- degree push-down
insertion, bandwidth allocation and the view-synchronization planning --
so regressions in their cost (they all run on every viewer join) are
visible in the benchmark history.
"""

from __future__ import annotations

from repro.core.bandwidth import allocate_inbound, allocate_outbound
from repro.core.layering import DelayLayerConfig
from repro.core.state import StreamSubscription
from repro.core.subscription import plan_view_synchronization
from repro.core.telecast import build_views
from repro.core.topology import StreamTree
from repro.model.cdn import CDN_NODE_ID
from repro.model.producer import make_default_producers
from repro.net.latency import DelayModel, LatencyMatrix
from repro.sim.rng import SeededRandom


def _default_view():
    producers = make_default_producers()
    return build_views(producers, num_views=1, streams_per_site=3)[0]


def test_bench_inbound_allocation(benchmark):
    view = _default_view()
    supply = {stream_id: 1000.0 for stream_id in view.stream_ids}
    result = benchmark(allocate_inbound, view, 12.0, supply)
    assert result.request_accepted


def test_bench_outbound_allocation(benchmark):
    view = _default_view()
    accepted = view.prioritized_streams
    result = benchmark(allocate_outbound, accepted, 10.0)
    assert result.total_out_degree == 5


def test_bench_degree_pushdown_insert(benchmark):
    producers = make_default_producers()
    stream = producers[0].streams[0]
    delay_model = DelayModel(LatencyMatrix(default_delay=0.05), processing_delay=0.1)
    rng = SeededRandom(3)

    def build_tree_of_500() -> StreamTree:
        tree = StreamTree(stream, delay_model, d_max=10_000.0)
        for index in range(500):
            capacity = rng.uniform(0.0, 12.0)
            tree.insert(f"viewer-{index:04d}", int(capacity // 4.0), capacity)
        return tree

    tree = benchmark.pedantic(build_tree_of_500, rounds=3, iterations=1)
    tree.validate()
    assert len(tree) == 500


def test_bench_view_sync_planning(benchmark):
    view = _default_view()
    config = DelayLayerConfig()
    delay_model = DelayModel(LatencyMatrix(default_delay=0.05), processing_delay=0.1)
    subscriptions = {}
    parent_delays = {}
    for index, stream in enumerate(view.streams):
        subscriptions[stream.stream_id] = StreamSubscription(
            stream=stream,
            parent_id=CDN_NODE_ID if index % 2 == 0 else "viewer-parent",
            end_to_end_delay=60.0 + 0.1 * index,
            effective_delay=60.0 + 0.1 * index,
            via_cdn=index % 2 == 0,
        )
        parent_delays[stream.stream_id] = 60.0 + 0.05 * index

    plan = benchmark(
        plan_view_synchronization,
        config,
        delay_model,
        "viewer-under-test",
        subscriptions,
        parent_delays,
    )
    assert plan.layer_spread() <= config.kappa
