"""Ablation: the layer-width parameter kappa.

``tau = d_buff / kappa`` controls how finely end-to-end delay is
discretised.  A larger kappa means narrower layers: the skew guarantee
(Layer Property 2 bounds the spread by ``kappa * tau = d_buff``) is
unchanged, but narrower layers make more placements look asynchronous and
force more push-downs and CDN re-provisioning.  The paper fixes kappa = 2;
this ablation sweeps it and reports acceptance ratio and layer statistics.
"""

from __future__ import annotations

from repro.experiments.runner import run_telecast_scenario
from repro.traces.workload import BandwidthDistribution

KAPPAS = (2, 4, 8)


def test_ablation_kappa(benchmark, bench_config):
    scenario_base = bench_config.with_outbound(BandwidthDistribution.uniform(0.0, 12.0))

    def run_all():
        results = {}
        for kappa in KAPPAS:
            scenario = scenario_base.with_(kappa=kappa)
            results[kappa] = run_telecast_scenario(scenario, snapshot_every=None)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for kappa, result in results.items():
        layers = list(result.final_snapshot.max_layers.values())
        max_layer = max(layers) if layers else 0
        print(
            f"  kappa={kappa}: acceptance={result.acceptance_ratio:.3f} "
            f"max_layer={max_layer} layer_bound={result.config.layer_config().max_layer_index}"
        )

    for kappa, result in results.items():
        layer_config = result.config.layer_config()
        layers = list(result.final_snapshot.max_layers.values())
        # The d_max-implied layer bound is respected for every kappa.
        assert all(layer <= layer_config.max_layer_index for layer in layers)
        # The skew guarantee does not depend on kappa, so acceptance stays
        # in the same band as the paper configuration.
        assert result.acceptance_ratio >= results[2].acceptance_ratio - 0.1
