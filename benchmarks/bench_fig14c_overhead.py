"""Figure 14(c): control-plane overhead of joins and view changes.

Paper observation: the viewer join (registration, bandwidth allocation,
topology formation, stream subscription) completes within about 1.5
seconds; a view change is served within about 500 ms because the new
streams are delivered from the CDN while the background join completes.
"""

from __future__ import annotations

from repro.experiments.figures import figure_14c_overhead
from repro.experiments.reporting import format_distribution_figure


def test_fig14c_overhead(benchmark, bench_config):
    figure = benchmark.pedantic(
        figure_14c_overhead,
        kwargs={"config": bench_config, "view_change_probability": 0.3},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_distribution_figure(figure, thresholds=(0.5, 1.5)))

    joins = figure.samples["join_delay"]
    changes = figure.samples["view_change_delay"]
    assert joins and changes
    # Join completes within the paper's ~1.5 s envelope.
    assert max(joins) <= 2.0
    assert figure.fraction_at_most("join_delay", 1.5) >= 0.95
    # View changes are served quickly from the CDN (paper: within 500 ms).
    assert figure.fraction_at_most("view_change_delay", 0.5) >= 0.9
    # View changes are faster than full joins.
    assert (sum(changes) / len(changes)) < (sum(joins) / len(joins))
