"""Shard-parallel scale benchmark: 100k-viewer telecasts across processes.

The scenario is the same telecast broadcast the single-process scale
benchmark (``bench_scale.py``) runs -- one headline view, region-sharded
control plane -- pushed an order of magnitude further and executed on
the shard-parallel engine (:mod:`repro.parallel`): each group of LSCs
runs its controller, stream trees and event loop in its own worker
process.  The benchmark times one single-process leg and one sharded leg
over the identical seeded scenario and checks two things:

* **Parity** (always enforced): the per-LSC placement digests of the
  sharded run must be byte-identical to the single-process run's -- the
  parallel engine may only change wall-clock time, never placement.
* **Speedup** (enforced on >= 4 cores): the sharded leg must be at
  least ``--min-speedup`` (default 3x) faster at the headline
  population.  On smaller machines process parallelism cannot win
  anything, so the measured speedup is reported in the record but not
  gated.

Output is the machine-readable ``BENCH_scale_parallel.json``
perf-trajectory record (``cpu_count`` reports the machine,
``workers_used`` the actual worker processes).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_parallel.py          # full: up to 100k
    PYTHONPATH=src python benchmarks/bench_scale_parallel.py --quick  # CI: 10k, 2 workers
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.runner import build_scenario, build_telecast_system
from repro.metrics.placement import per_lsc_placement_digests
from repro.parallel import run_sharded_scenario

#: Populations of the full benchmark (the --quick CI mode uses QUICK_*).
POPULATIONS = (20000, 50000, 100000)

#: LSC count of the full benchmark (shards spread over the workers).
NUM_LSCS = 8

#: Worker processes of the full benchmark.
WORKERS = 4

QUICK_POPULATION = 10000
QUICK_WORKERS = 2
QUICK_NUM_LSCS = 4

#: Required sharded-vs-single-process speedup at the headline population.
DEFAULT_MIN_SPEEDUP = 3.0

#: Cores below which the speedup gate is report-only: with fewer cores
#: than this there is nothing for process parallelism to win.
MIN_CORES_FOR_GATE = 4


def _broadcast_config(num_viewers: int, num_lscs: int) -> ExperimentConfig:
    """The benchmark scenario: one headline view, uncapped CDN.

    The CDN is uncapped so the parity guarantee is unconditional: with
    per-shard CDN accounting, admission decisions match the
    single-process run exactly whenever the CDN never saturates.
    """
    return PAPER_CONFIG.with_scaled_population(
        num_viewers, num_lscs=num_lscs, num_views=1
    ).with_uncapped_cdn()


def _measure_single(config: ExperimentConfig) -> Dict[str, object]:
    """Single-process leg: full workload run plus placement digests."""
    scenario = build_scenario(config)
    system = build_telecast_system(scenario)
    started = time.perf_counter()
    metrics = system.run_workload(
        scenario.viewers, scenario.events, scenario.views, snapshot_every=None
    )
    elapsed = time.perf_counter() - started
    snapshot = system.snapshot()
    return {
        "num_viewers": config.num_viewers,
        "workers_used": 1,
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "wall_clock_s": round(elapsed, 4),
        "joins_per_s": round(snapshot.num_requests / elapsed, 2)
        if elapsed > 0
        else float("inf"),
        "digests": per_lsc_placement_digests(system),
    }


def _measure_sharded(config: ExperimentConfig, workers: int) -> Dict[str, object]:
    """Sharded leg: the same scenario over ``workers`` processes."""
    started = time.perf_counter()
    sharded = run_sharded_scenario(
        config.with_(shard_workers=workers), snapshot_every=None
    )
    elapsed = time.perf_counter() - started
    snapshot = sharded.result.final_snapshot
    return {
        "num_viewers": config.num_viewers,
        "workers_used": sharded.num_workers,
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "wall_clock_s": round(elapsed, 4),
        "joins_per_s": round(snapshot.num_requests / elapsed, 2)
        if elapsed > 0
        else float("inf"),
        "digests": dict(sharded.placement_digests),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_POPULATION} viewers, {QUICK_WORKERS} workers",
    )
    parser.add_argument(
        "--record",
        default="BENCH_scale_parallel.json",
        help="where to write the JSON record (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required sharded speedup at the headline population on "
        f">= {MIN_CORES_FOR_GATE} cores (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.quick:
        populations = (QUICK_POPULATION,)
        workers = QUICK_WORKERS
        num_lscs = QUICK_NUM_LSCS
    else:
        populations = POPULATIONS
        workers = WORKERS
        num_lscs = NUM_LSCS

    points = []
    parity_ok = True
    for count in populations:
        config = _broadcast_config(count, num_lscs)
        single = _measure_single(config)
        sharded = _measure_sharded(config, workers)
        point_parity = single["digests"] == sharded["digests"]
        parity_ok = parity_ok and point_parity
        speedup = (
            single["wall_clock_s"] / sharded["wall_clock_s"]
            if sharded["wall_clock_s"] > 0
            else float("inf")
        )
        single.pop("digests")
        sharded.pop("digests")
        points.append(
            {
                "num_viewers": count,
                "single": single,
                "sharded": sharded,
                "speedup": round(speedup, 2),
                "placement_parity": point_parity,
            }
        )
        print(
            f"n={count:>6}: single {single['wall_clock_s']:8.2f}s, "
            f"sharded[{sharded['workers_used']}w] {sharded['wall_clock_s']:8.2f}s, "
            f"speedup {speedup:5.2f}x, "
            f"parity {'ok' if point_parity else 'FAIL'}"
        )
        if not point_parity:
            print(f"FAIL: sharded placement diverged at {count} viewers")

    headline = points[-1]
    gate_active = cores >= MIN_CORES_FOR_GATE
    record = {
        "benchmark": "scale_parallel",
        "quick": args.quick,
        "cpu_count": cores,
        "workers_used": workers,
        "scenario": (
            f"telecast broadcast (num_views=1, num_lscs={num_lscs}, "
            "uncapped CDN), sharded vs single-process"
        ),
        "points": points,
        "headline_speedup": headline["speedup"],
        "speedup_gate_active": gate_active,
        "min_speedup": args.min_speedup,
        "placement_parity": parity_ok,
    }
    Path(args.record).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(f"record written to {args.record}")

    failures = not parity_ok
    if gate_active:
        if headline["speedup"] < args.min_speedup:
            print(
                f"FAIL: headline speedup {headline['speedup']:.2f}x below "
                f"required {args.min_speedup:.1f}x on {cores} cores"
            )
            failures = True
        else:
            print(
                f"speedup gate: {headline['speedup']:.2f}x >= "
                f"{args.min_speedup:.1f}x on {cores} cores: ok"
            )
    else:
        print(
            f"speedup gate: report-only on {cores} core(s) "
            f"(< {MIN_CORES_FOR_GATE}): measured {headline['speedup']:.2f}x"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
