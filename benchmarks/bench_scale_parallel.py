"""Shard-parallel scale benchmark: 100k-viewer telecasts across processes.

The scenario is the same telecast broadcast the single-process scale
benchmark (``bench_scale.py``) runs -- one headline view, region-sharded
control plane -- pushed an order of magnitude further and executed on
the shard-parallel engine (:mod:`repro.parallel`): each group of LSCs
runs its controller, stream trees and event loop in its own worker
process.  The benchmark times one single-process leg and one sharded leg
over the identical seeded scenario and checks three things:

* **Parity** (always enforced): the per-LSC placement digests of the
  sharded run must be byte-identical to the single-process run's -- the
  parallel engine may only change wall-clock time, never placement.
* **Build speedup** (enforced on full runs): a worker's shard-filtered
  scenario build (:class:`~repro.experiments.runner.ShardSelection`)
  must be at least ``--min-build-speedup`` (default 2x) faster than the
  legacy full rebuild at the headline population.  This gate needs no
  spare cores -- it compares two builds in the same process -- so it is
  armed everywhere except ``--quick`` (tiny populations, where constant
  substrate costs dominate the build).
* **Run speedup** (enforced on >= 4 cores): the sharded leg must be at
  least ``--min-speedup`` (default 3x) faster at the headline
  population.  On smaller machines process parallelism cannot win
  anything, so the measured speedup is reported in the record
  (``speedup_gate_armed`` says whether it was enforced) but not gated.

``--scale1m`` switches to the 1M-viewer scale axis: a single 1M-viewer
point over 16 LSCs and 4 workers, sharded leg only (the single-process
leg at that population is exactly the O(n) cost the projection removes;
parity is pinned by the default mode and the test suite).  Its results
merge into the same record under a ``scale1m`` key.  With ``--quick``
the scale1m leg shrinks to a 20k-viewer smoke point on 2 workers.

Output is the machine-readable ``BENCH_scale_parallel.json``
perf-trajectory record (``cpu_count`` reports the machine,
``workers_used`` the actual worker processes).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_parallel.py            # full: up to 100k
    PYTHONPATH=src python benchmarks/bench_scale_parallel.py --quick    # CI: 10k, 2 workers
    PYTHONPATH=src python benchmarks/bench_scale_parallel.py --scale1m  # 1M viewers, sharded leg
    PYTHONPATH=src python benchmarks/bench_scale_parallel.py --scale1m --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.runner import (
    ShardSelection,
    build_scenario,
    build_telecast_system,
)
from repro.metrics.placement import per_lsc_placement_digests
from repro.parallel import run_sharded_scenario

#: Populations of the full benchmark (the --quick CI mode uses QUICK_*).
POPULATIONS = (20000, 50000, 100000)

#: LSC count of the full benchmark (shards spread over the workers).
NUM_LSCS = 8

#: Worker processes of the full benchmark.
WORKERS = 4

QUICK_POPULATION = 10000
QUICK_WORKERS = 2
QUICK_NUM_LSCS = 4

#: The --scale1m axis: one point at a million viewers, 16 LSCs, sharded
#: leg only.  The quick variant is the CI smoke point.
SCALE1M_POPULATION = 1_000_000
SCALE1M_NUM_LSCS = 16
SCALE1M_WORKERS = 4
SCALE1M_QUICK_POPULATION = 20000
SCALE1M_QUICK_NUM_LSCS = 8
SCALE1M_QUICK_WORKERS = 2

#: Stall timeout of the scale1m sharded leg: workers report to the
#: coordinator only at barriers and completion, and a 1M-viewer shard
#: can legitimately stay silent far longer than the 600 s default.
SCALE1M_STALL_TIMEOUT = 7200.0

#: Required sharded-vs-single-process speedup at the headline population.
DEFAULT_MIN_SPEEDUP = 3.0

#: Required shard-filtered-vs-full scenario build speedup (per worker).
DEFAULT_MIN_BUILD_SPEEDUP = 2.0

#: Cores below which the run-speedup gate is report-only: with fewer
#: cores than this there is nothing for process parallelism to win.
MIN_CORES_FOR_GATE = 4


def _broadcast_config(num_viewers: int, num_lscs: int) -> ExperimentConfig:
    """The benchmark scenario: one headline view, uncapped CDN.

    The CDN is uncapped so the parity guarantee is unconditional: with
    per-shard CDN accounting, admission decisions match the
    single-process run exactly whenever the CDN never saturates.
    """
    return PAPER_CONFIG.with_scaled_population(
        num_viewers, num_lscs=num_lscs, num_views=1
    ).with_uncapped_cdn()


def _measure_builds(
    config: ExperimentConfig, workers: int, *, reps: int = 3
) -> Dict[str, object]:
    """Time one worker's scenario build: legacy full rebuild vs filtered.

    ``build_full_s`` is what every worker paid before shard projection
    (the whole world, rebuilt per process); ``build_filtered_s`` is
    worker 0's projected build under the same config.  Best of ``reps``
    on both legs: single-run wall times on a busy box are noisy enough
    to flip the gate.
    """
    build_full = float("inf")
    build_filtered = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        build_scenario(config)
        build_full = min(build_full, time.perf_counter() - started)
        started = time.perf_counter()
        build_scenario(
            config, shard=ShardSelection(num_workers=workers, worker_index=0)
        )
        build_filtered = min(build_filtered, time.perf_counter() - started)
    return {
        "build_full_s": round(build_full, 4),
        "build_filtered_s": round(build_filtered, 4),
        "build_speedup": round(build_full / build_filtered, 2)
        if build_filtered > 0
        else float("inf"),
    }


def _measure_single(config: ExperimentConfig) -> Dict[str, object]:
    """Single-process leg: full workload run plus placement digests."""
    scenario = build_scenario(config)
    system = build_telecast_system(scenario)
    started = time.perf_counter()
    metrics = system.run_workload(
        scenario.viewers, scenario.events, scenario.views, snapshot_every=None
    )
    elapsed = time.perf_counter() - started
    snapshot = system.snapshot()
    return {
        "num_viewers": config.num_viewers,
        "workers_used": 1,
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "wall_clock_s": round(elapsed, 4),
        "joins_per_s": round(snapshot.num_requests / elapsed, 2)
        if elapsed > 0
        else float("inf"),
        "digests": per_lsc_placement_digests(system),
    }


def _measure_sharded(
    config: ExperimentConfig,
    workers: int,
    *,
    stall_timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Sharded leg: the same scenario over ``workers`` processes."""
    kwargs = {} if stall_timeout is None else {"stall_timeout": stall_timeout}
    started = time.perf_counter()
    sharded = run_sharded_scenario(
        config.with_(shard_workers=workers), snapshot_every=None, **kwargs
    )
    elapsed = time.perf_counter() - started
    snapshot = sharded.result.final_snapshot
    return {
        "num_viewers": config.num_viewers,
        "workers_used": sharded.num_workers,
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "wall_clock_s": round(elapsed, 4),
        "joins_per_s": round(snapshot.num_requests / elapsed, 2)
        if elapsed > 0
        else float("inf"),
        "digests": dict(sharded.placement_digests),
    }


def _check_build_gate(
    headline: Dict[str, object], min_build_speedup: float, armed: bool
) -> bool:
    """Print the build-speedup verdict; return True on failure."""
    speedup = headline["build"]["build_speedup"]
    if not armed:
        print(f"build-speedup gate: report-only (--quick): measured {speedup:.2f}x")
        return False
    if speedup < min_build_speedup:
        print(
            f"FAIL: shard-filtered build speedup {speedup:.2f}x below "
            f"required {min_build_speedup:.1f}x"
        )
        return True
    print(f"build-speedup gate: {speedup:.2f}x >= {min_build_speedup:.1f}x: ok")
    return False


def _run_scale1m(args, cores: int) -> int:
    """The 1M-viewer axis: sharded leg only, merged into the record."""
    if args.quick:
        population = SCALE1M_QUICK_POPULATION
        num_lscs = SCALE1M_QUICK_NUM_LSCS
        workers = SCALE1M_QUICK_WORKERS
    else:
        population = SCALE1M_POPULATION
        num_lscs = SCALE1M_NUM_LSCS
        workers = SCALE1M_WORKERS
    config = _broadcast_config(population, num_lscs)
    build = _measure_builds(config, workers)
    print(
        f"n={population:>7}: build full {build['build_full_s']:8.2f}s, "
        f"filtered {build['build_filtered_s']:8.2f}s, "
        f"speedup {build['build_speedup']:5.2f}x"
    )
    sharded = _measure_sharded(
        config, workers, stall_timeout=SCALE1M_STALL_TIMEOUT
    )
    sharded.pop("digests")
    print(
        f"n={population:>7}: sharded[{sharded['workers_used']}w] "
        f"{sharded['wall_clock_s']:8.2f}s, "
        f"{sharded['joins_per_s']:8.2f} joins/s, "
        f"connected {sharded['connected']}"
    )

    block = {
        "quick": args.quick,
        "cpu_count": cores,
        "num_lscs": num_lscs,
        "workers_used": workers,
        "point": {"num_viewers": population, "build": build, "sharded": sharded},
        "min_build_speedup": args.min_build_speedup,
        "build_speedup_gate_armed": not args.quick,
    }
    record_path = Path(args.record)
    try:
        record = json.loads(record_path.read_text())
        if not isinstance(record, dict):
            record = {}
    except (OSError, ValueError):
        record = {}
    record.setdefault("benchmark", "scale_parallel")
    record["scale1m"] = block
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"scale1m block merged into {args.record}")

    headline = {"build": build}
    failed = _check_build_gate(headline, args.min_build_speedup, not args.quick)
    if sharded["connected"] != population:
        print(
            f"FAIL: sharded run connected {sharded['connected']} of "
            f"{population} viewers"
        )
        failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_POPULATION} viewers, {QUICK_WORKERS} workers",
    )
    parser.add_argument(
        "--scale1m",
        action="store_true",
        help=f"1M-viewer axis: {SCALE1M_POPULATION} viewers over "
        f"{SCALE1M_NUM_LSCS} LSCs, sharded leg only (--quick: "
        f"{SCALE1M_QUICK_POPULATION} viewers)",
    )
    parser.add_argument(
        "--record",
        default="BENCH_scale_parallel.json",
        help="where to write the JSON record (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required sharded speedup at the headline population on "
        f">= {MIN_CORES_FOR_GATE} cores (default: %(default)s)",
    )
    parser.add_argument(
        "--min-build-speedup",
        type=float,
        default=DEFAULT_MIN_BUILD_SPEEDUP,
        help="required shard-filtered vs full scenario-build speedup at "
        "the headline population (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.scale1m:
        return _run_scale1m(args, cores)
    if args.quick:
        populations = (QUICK_POPULATION,)
        workers = QUICK_WORKERS
        num_lscs = QUICK_NUM_LSCS
    else:
        populations = POPULATIONS
        workers = WORKERS
        num_lscs = NUM_LSCS

    points = []
    parity_ok = True
    for count in populations:
        config = _broadcast_config(count, num_lscs)
        build = _measure_builds(config, workers)
        single = _measure_single(config)
        sharded = _measure_sharded(config, workers)
        point_parity = single["digests"] == sharded["digests"]
        parity_ok = parity_ok and point_parity
        speedup = (
            single["wall_clock_s"] / sharded["wall_clock_s"]
            if sharded["wall_clock_s"] > 0
            else float("inf")
        )
        single.pop("digests")
        sharded.pop("digests")
        points.append(
            {
                "num_viewers": count,
                "build": build,
                "single": single,
                "sharded": sharded,
                "speedup": round(speedup, 2),
                "placement_parity": point_parity,
            }
        )
        print(
            f"n={count:>6}: build {build['build_full_s']:7.2f}s -> "
            f"{build['build_filtered_s']:7.2f}s ({build['build_speedup']:.2f}x), "
            f"single {single['wall_clock_s']:8.2f}s, "
            f"sharded[{sharded['workers_used']}w] {sharded['wall_clock_s']:8.2f}s, "
            f"speedup {speedup:5.2f}x, "
            f"parity {'ok' if point_parity else 'FAIL'}"
        )
        if not point_parity:
            print(f"FAIL: sharded placement diverged at {count} viewers")

    headline = points[-1]
    gate_armed = cores >= MIN_CORES_FOR_GATE
    record = {
        "benchmark": "scale_parallel",
        "quick": args.quick,
        "cpu_count": cores,
        "workers_used": workers,
        "scenario": (
            f"telecast broadcast (num_views=1, num_lscs={num_lscs}, "
            "uncapped CDN), sharded vs single-process"
        ),
        "points": points,
        "headline_speedup": headline["speedup"],
        "headline_build_speedup": headline["build"]["build_speedup"],
        "speedup_gate_armed": gate_armed,
        "build_speedup_gate_armed": not args.quick,
        "min_speedup": args.min_speedup,
        "min_build_speedup": args.min_build_speedup,
        "placement_parity": parity_ok,
    }
    record_path = Path(args.record)
    try:
        previous = json.loads(record_path.read_text())
        if isinstance(previous, dict) and "scale1m" in previous:
            record["scale1m"] = previous["scale1m"]
    except (OSError, ValueError):
        pass
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"record written to {args.record}")

    failures = not parity_ok
    failures = (
        _check_build_gate(headline, args.min_build_speedup, not args.quick)
        or failures
    )
    if gate_armed:
        if headline["speedup"] < args.min_speedup:
            print(
                f"FAIL: headline speedup {headline['speedup']:.2f}x below "
                f"required {args.min_speedup:.1f}x on {cores} cores"
            )
            failures = True
        else:
            print(
                f"speedup gate: {headline['speedup']:.2f}x >= "
                f"{args.min_speedup:.1f}x on {cores} cores: ok"
            )
    else:
        print(
            f"speedup gate: report-only on {cores} core(s) "
            f"(< {MIN_CORES_FOR_GATE}): measured {headline['speedup']:.2f}x"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
