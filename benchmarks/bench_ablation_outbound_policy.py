"""Ablation: outbound bandwidth allocation policies (Figure 8's trade-off).

The paper argues (Section IV-B1, Figure 8) that assigning every viewer's
outbound capacity only to the highest-priority stream supports many
viewers at poor quality, an even split supports few viewers at good
quality, and the round-robin-in-priority-order policy sits at the sweet
spot.  This ablation compares the three policies on the per-stream
forwarding supply they create for a synthetic viewer population.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.bandwidth import (
    allocate_outbound,
    allocate_outbound_equal_split,
    allocate_outbound_priority_only,
)
from repro.core.telecast import build_views
from repro.model.producer import make_default_producers
from repro.model.stream import StreamId
from repro.sim.rng import SeededRandom

POLICIES = {
    "round_robin": allocate_outbound,
    "priority_only": allocate_outbound_priority_only,
    "equal_split": allocate_outbound_equal_split,
}


def _supply_per_stream(policy, capacities: List[float]) -> Dict[StreamId, int]:
    producers = make_default_producers()
    view = build_views(producers, num_views=1, streams_per_site=3)[0]
    accepted = view.prioritized_streams
    totals: Dict[StreamId, int] = {entry.stream_id: 0 for entry in accepted}
    for capacity in capacities:
        allocation = policy(accepted, capacity)
        for stream_id, degree in allocation.out_degree.items():
            totals[stream_id] += degree
    return totals


def test_ablation_outbound_policy(benchmark):
    rng = SeededRandom(5)
    capacities = [rng.uniform(0.0, 12.0) for _ in range(1000)]

    def run_all() -> Dict[str, Dict[StreamId, int]]:
        return {name: _supply_per_stream(policy, capacities) for name, policy in POLICIES.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, totals in results.items():
        ordered = [totals[sid] for sid in sorted(totals, key=lambda s: -totals[s])]
        print(f"  {name:>14}: per-stream forwarding slots {ordered}")

    round_robin = results["round_robin"]
    priority_only = results["priority_only"]
    equal_split = results["equal_split"]

    def spread(totals: Dict[StreamId, int]) -> int:
        return max(totals.values()) - min(totals.values())

    # Priority-only concentrates everything on one stream (largest spread);
    # round-robin is strictly more balanced while still favouring priority.
    assert spread(priority_only) > spread(round_robin)
    # Round-robin never wastes capacity relative to an even split.
    assert sum(round_robin.values()) >= sum(equal_split.values())
    # Round-robin monotonicity: higher-priority streams get at least as many slots.
    producers = make_default_producers()
    view = build_views(producers, num_views=1, streams_per_site=3)[0]
    ordered_ids = [entry.stream_id for entry in view.prioritized_streams]
    values = [round_robin[sid] for sid in ordered_ids]
    assert all(a >= b for a, b in zip(values, values[1:]))
