"""Event-driven control-plane overhead benchmark (simulated vs instant).

The simulated control plane turns every workload operation into in-flight
control messages (requests, acks, heartbeats, failure sweeps) scheduled
on the discrete-event engine.  That machinery must stay cheap: the
admission pipeline dominates a join either way, so delivering it through
the message plane may not cost more than a modest constant factor.

This benchmark runs the same 2k-viewer spread-arrival scenario once under
``control_plane="instant"`` and once under ``control_plane="simulated"``,
reports the simulated driver's throughput in fired simulation events per
second, and emits the machine-readable ``BENCH_controlplane.json``
perf-trajectory record.  The script exits non-zero when

* the simulated run is more than ``--max-slowdown`` (default 1.5x)
  slower than the instant run in wall-clock time, or
* the two drivers disagree on connected viewers or acceptance (the
  workload has nonzero control delays, so small placement differences are
  expected -- the gate bounds drift, it does not demand equality).

Usage::

    PYTHONPATH=src python benchmarks/bench_controlplane.py
    PYTHONPATH=src python benchmarks/bench_controlplane.py --viewers 500
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.runner import build_scenario, build_telecast_system

#: Population of the benchmark scenario.
DEFAULT_VIEWERS = 2000

#: Allowed wall-clock factor of simulated over instant mode.
DEFAULT_MAX_SLOWDOWN = 1.5

#: Allowed relative acceptance-ratio drift between the two drivers (the
#: simulated plane reorders contended joins, which can move a few
#: admissions around; it must not change the aggregate picture).
ACCEPTANCE_DRIFT = 0.05


def _config(num_viewers: int) -> ExperimentConfig:
    """Spread Poisson arrivals so control latency has room to matter.

    A 100/s arrival rate keeps the session horizon (and with it the
    heartbeat volume) proportional to the population instead of putting
    every join at t=0 where the message plane would have nothing to do;
    with in-flight join latencies around 0.5 s, tens of joins overlap at
    any instant.
    """
    return PAPER_CONFIG.with_scaled_population(
        num_viewers,
        num_lscs=3,
        arrival_rate_per_second=100.0,
        heartbeat_period=5.0,
    )


#: Wall-clock repetitions per leg; the fastest is reported (the metrics
#: are deterministic, only the timing varies).
REPETITIONS = 2


def _run(config: ExperimentConfig, control_plane: str) -> Dict[str, float]:
    elapsed = float("inf")
    for _ in range(REPETITIONS):
        # A scenario is stateful (CDN reservations, viewer buffers) and
        # can only be run once; rebuild it per repetition.
        scenario = build_scenario(config)
        system = build_telecast_system(scenario)
        started = time.perf_counter()
        metrics = system.run_workload(
            scenario.viewers,
            scenario.events,
            scenario.views,
            control_plane=control_plane,
            heartbeat_period=config.heartbeat_period,
            control_delay_scale=config.control_delay_scale,
        )
        elapsed = min(elapsed, time.perf_counter() - started)
    snapshot = system.snapshot()
    fired = system.simulator.fired
    summary = metrics.summary()
    return {
        "control_plane": control_plane,
        "wall_clock_s": round(elapsed, 4),
        "sim_events_fired": fired,
        "events_per_s": round(fired / elapsed, 1) if elapsed > 0 else float("inf"),
        "connected": snapshot.num_viewers,
        "acceptance_ratio": snapshot.acceptance_ratio,
        "control_messages_sent": int(summary.get("control_messages_sent", 0)),
        "stale_control_messages": int(summary.get("stale_control_messages", 0)),
        "observed_join_delay_p50": summary.get("observed_join_delay_p50"),
        "analytic_join_delay_p50": summary.get("join_delay_p50"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--viewers",
        type=int,
        default=DEFAULT_VIEWERS,
        help="population of the benchmark scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=DEFAULT_MAX_SLOWDOWN,
        help="allowed simulated/instant wall-clock factor (default: %(default)s)",
    )
    parser.add_argument(
        "--record",
        default="BENCH_controlplane.json",
        help="where to write the JSON record (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.viewers <= 0:
        parser.error("--viewers must be > 0")
    if args.max_slowdown <= 0:
        parser.error("--max-slowdown must be > 0")

    config = _config(args.viewers)
    instant = _run(config, "instant")
    simulated = _run(config.with_(control_plane="simulated"), "simulated")
    slowdown = (
        simulated["wall_clock_s"] / instant["wall_clock_s"]
        if instant["wall_clock_s"] > 0
        else float("inf")
    )

    record = {
        "benchmark": "controlplane",
        "num_viewers": args.viewers,
        "heartbeat_period_s": config.heartbeat_period,
        "instant": instant,
        "simulated": simulated,
        "slowdown": round(slowdown, 3),
        "max_slowdown": args.max_slowdown,
    }
    Path(args.record).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(f"population                   : {args.viewers} viewers, 3 LSCs")
    print(
        f"instant                      : {instant['wall_clock_s'] * 1000:8.1f} ms "
        f"({instant['sim_events_fired']} sim events)"
    )
    print(
        f"simulated                    : {simulated['wall_clock_s'] * 1000:8.1f} ms "
        f"({simulated['sim_events_fired']} sim events, "
        f"{simulated['control_messages_sent']} messages, "
        f"{simulated['stale_control_messages']} stale)"
    )
    print(f"simulated driver throughput  : {simulated['events_per_s']:10.1f} events/s")
    print(f"slowdown (simulated/instant) : {slowdown:8.2f}x (gate: <= {args.max_slowdown}x)")
    observed = simulated["observed_join_delay_p50"]
    analytic = simulated["analytic_join_delay_p50"]
    if observed is not None and analytic is not None:
        print(
            f"join delay p50               : observed {observed:.3f}s "
            f"vs analytic {analytic:.3f}s"
        )
    print(f"record written to            : {args.record}")

    failures = []
    if slowdown > args.max_slowdown:
        failures.append(
            f"simulated driver is {slowdown:.2f}x slower than instant "
            f"(gate: {args.max_slowdown}x)"
        )
    drift = abs(simulated["acceptance_ratio"] - instant["acceptance_ratio"])
    if drift > ACCEPTANCE_DRIFT:
        failures.append(
            f"acceptance drifted {drift:.3f} between drivers "
            f"(gate: {ACCEPTANCE_DRIFT})"
        )
    connected_drift = abs(simulated["connected"] - instant["connected"]) / max(
        1, instant["connected"]
    )
    if connected_drift > ACCEPTANCE_DRIFT:
        failures.append(
            f"connected viewers drifted {connected_drift:.3f} between drivers "
            f"(gate: {ACCEPTANCE_DRIFT})"
        )
    for failure in failures:
        print(f"FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
