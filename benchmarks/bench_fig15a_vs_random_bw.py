"""Figure 15(a): 4D TeleCast vs. Random routing over outbound bandwidth.

Paper observation: sweeping the per-viewer outbound bandwidth from 0 to
10 Mbps at 1000 viewers, 4D TeleCast's priority-based allocation and
degree push-down increase the acceptance ratio by about 20% over the
Random scheme in the contended region; the two coincide when viewers
contribute nothing (everything comes from the CDN in both).
"""

from __future__ import annotations

from repro.experiments.figures import figure_15a_vs_random_bandwidth
from repro.experiments.reporting import format_scaling_figure

BANDWIDTH_VALUES = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def test_fig15a_vs_random_bandwidth(benchmark, bench_config):
    figure = benchmark.pedantic(
        figure_15a_vs_random_bandwidth,
        kwargs={"config": bench_config, "bandwidth_values": BANDWIDTH_VALUES},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_scaling_figure(figure, x_label="obw_mbps"))

    telecast = figure.series_by_label("TeleCast")
    random_series = figure.series_by_label("Random")
    # With zero outbound bandwidth both systems are CDN-only and identical.
    assert abs(telecast.values[0] - random_series.values[0]) < 0.02
    # TeleCast never loses to Random (allowing for simulation noise).
    for telecast_value, random_value in zip(telecast.values, random_series.values):
        assert telecast_value >= random_value - 0.02
    # In the contended region TeleCast wins by a clear margin (paper: ~20%).
    best_gap = max(
        telecast_value - random_value
        for telecast_value, random_value in zip(telecast.values, random_series.values)
    )
    assert best_gap >= 0.08
    # TeleCast's acceptance grows monotonically with viewer contribution.
    assert all(b >= a - 1e-9 for a, b in zip(telecast.values, telecast.values[1:]))
