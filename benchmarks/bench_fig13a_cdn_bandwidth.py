"""Figure 13(a): CDN bandwidth required to serve every request.

Paper observation: with no viewer contribution every request is served by
the CDN (12 Mbps per viewer, i.e. 12000 Mbps at 1000 viewers); when viewer
outbound bandwidth grows the CDN requirement falls, reaching roughly half
the total demand when outbound capacity is uniform in 0-12 Mbps.
"""

from __future__ import annotations

from repro.experiments.figures import figure_13a_cdn_bandwidth
from repro.experiments.reporting import format_scaling_figure
from repro.traces.workload import BandwidthDistribution

SETTINGS = (
    BandwidthDistribution.fixed(0.0),
    BandwidthDistribution.fixed(6.0),
    BandwidthDistribution.fixed(10.0),
    BandwidthDistribution.uniform(0.0, 12.0),
    BandwidthDistribution.uniform(2.0, 10.0),
    BandwidthDistribution.uniform(4.0, 14.0),
)


def test_fig13a_cdn_bandwidth(benchmark, bench_config, bench_step):
    figure = benchmark.pedantic(
        figure_13a_cdn_bandwidth,
        kwargs={
            "config": bench_config,
            "bandwidth_settings": SETTINGS,
            "step": bench_step,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_scaling_figure(figure))

    demand = bench_config.demand_mbps
    no_contribution = figure.series_by_label("C_obw=0")
    # With zero outbound contribution the CDN carries the full demand.
    assert no_contribution.final_value() == demand

    # The CDN requirement decreases monotonically with viewer contribution.
    final_values = {series.label: series.final_value() for series in figure.series}
    assert final_values["C_obw=6"] < final_values["C_obw=0"]
    assert final_values["C_obw=10"] < final_values["C_obw=6"]
    # The paper's headline: a 0-12 Mbps population needs roughly half the
    # full demand from the CDN (about 6000 Mbps at 1000 viewers).
    assert 0.4 * demand <= final_values["C_obw=0-12"] <= 0.7 * demand

    # Every curve grows (weakly) with the number of viewers.
    for series in figure.series:
        assert all(b >= a for a, b in zip(series.values, series.values[1:]))
