#!/usr/bin/env python3
"""Verify that relative links in the repository's Markdown files resolve.

Scans every ``*.md`` file (skipping hidden directories) for inline
Markdown links and checks that relative targets exist on disk. External
links (``http(s)://``, ``mailto:``) and pure in-page anchors are ignored.
Exits non-zero listing every broken link, so CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIPPED_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def broken_links(root: Path):
    broken = []
    for md_file in iter_markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for match in LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(SKIPPED_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((md_file.relative_to(root), target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = broken_links(root)
    for md_file, target in broken:
        print(f"BROKEN  {md_file}: {target}")
    if broken:
        print(f"{len(broken)} broken link(s)")
        return 1
    print("all Markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
