"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that editable installs work in offline environments whose
setuptools predates PEP 660 wheel-less editable support
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
