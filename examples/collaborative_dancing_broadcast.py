#!/usr/bin/env python3
"""Broadcasting a collaborative dancing performance to a large audience.

The paper's motivating scenario: two dance studios (producer sites) perform
together in a shared virtual space while a large, passive audience watches
and freely picks viewing angles.  This example scales the audience from 100
to 600 viewers with heterogeneous uplinks and reports, at each step, the
CDN bandwidth the broadcast needs, how much of the traffic the audience
carries itself (the P2P share), and the acceptance ratio -- the same
quantities Figure 13 of the paper tracks.

Run with::

    python examples/collaborative_dancing_broadcast.py
"""

from __future__ import annotations

from repro.core import DelayLayerConfig, TeleCastSystem, build_views
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom
from repro.traces.workload import BandwidthDistribution, ViewerWorkload, WorkloadConfig

AUDIENCE_SIZE = 600
SNAPSHOT_EVERY = 100
CDN_CAPACITY_MBPS = 3600.0  # scaled from the paper's 6000 Mbps for 1000 viewers


def main() -> None:
    producers = make_default_producers(num_sites=2, cameras_per_site=8)

    workload = ViewerWorkload(
        WorkloadConfig(
            num_viewers=AUDIENCE_SIZE,
            outbound=BandwidthDistribution.uniform(0.0, 12.0),
            num_views=8,
            view_popularity_alpha=1.0,
        ),
        rng=SeededRandom(21),
    )
    audience = workload.viewers()
    schedule = workload.events(audience)

    latency = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in audience] + ["GSC", "LSC-0", "CDN"],
        rng=SeededRandom(5),
    )
    delay_model = DelayModel(latency, processing_delay=0.1, cdn_delta=60.0)
    system = TeleCastSystem(
        producers,
        CDN(CDN_CAPACITY_MBPS, delta=60.0),
        delay_model,
        DelayLayerConfig(),
    )
    views = build_views(producers, num_views=8, streams_per_site=3)

    print(f"broadcasting a 2-studio dance performance to {AUDIENCE_SIZE} viewers")
    print(f"{'viewers':>8} {'CDN Mbps':>10} {'P2P share':>10} {'acceptance':>11}")
    system.run_workload(audience, schedule, views, snapshot_every=SNAPSHOT_EVERY)
    reported = set()
    for snapshot in system.metrics.snapshots:
        if snapshot.num_requests in reported:
            continue
        reported.add(snapshot.num_requests)
        p2p_share = 1.0 - snapshot.cdn_fraction
        print(
            f"{snapshot.num_requests:>8} {snapshot.cdn_outbound_mbps:>10.0f} "
            f"{p2p_share:>10.0%} {snapshot.acceptance_ratio:>11.3f}"
        )

    final = system.metrics.snapshots[-1]
    audience_mbps = final.p2p_subscriptions * 2.0
    print()
    print(f"the audience itself carries {audience_mbps:.0f} Mbps of the broadcast "
          f"({1.0 - final.cdn_fraction:.0%} of all subscriptions)")
    print(f"join delay (95th percentile): "
          f"{sorted(system.metrics.join_delays)[int(0.95 * len(system.metrics.join_delays))] * 1000:.0f} ms")


if __name__ == "__main__":
    main()
