#!/usr/bin/env python3
"""An online exer-gaming event with a flash crowd and heavy view switching.

Two players fight with virtual light sabers (the TEEVE session the paper's
traces come from) while an audience of spectators floods in at the start of
the match, hops between viewing angles to follow the action, and partly
leaves before the end.  The example measures what the paper's Section VI is
about: how quickly view changes are served, how many viewers become
"victims" when their parent leaves or switches views, and how reliably they
are recovered.

Run with::

    python examples/exergaming_flash_crowd.py
"""

from __future__ import annotations

from repro.core import DelayLayerConfig, TeleCastSystem, build_views
from repro.metrics.stats import describe
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom
from repro.traces.workload import BandwidthDistribution, ViewerWorkload, WorkloadConfig

SPECTATORS = 300


def main() -> None:
    producers = make_default_producers(num_sites=2, cameras_per_site=8)

    # A flash crowd: every spectator requests the stream at match start
    # (arrival_rate_per_second=None puts all joins at t=0), then 60% switch
    # views mid-match and 30% leave early.
    workload = ViewerWorkload(
        WorkloadConfig(
            num_viewers=SPECTATORS,
            outbound=BandwidthDistribution.uniform(2.0, 10.0),
            num_views=8,
            view_popularity_alpha=0.8,
            view_change_probability=0.6,
            departure_probability=0.3,
            session_duration=120.0,
        ),
        rng=SeededRandom(8),
    )
    spectators = workload.viewers()
    schedule = workload.events(spectators)

    latency = generate_planetlab_matrix(
        [viewer.viewer_id for viewer in spectators] + ["GSC", "LSC-0", "CDN"],
        rng=SeededRandom(6),
    )
    system = TeleCastSystem(
        producers,
        CDN(1800.0, delta=60.0),
        DelayModel(latency, processing_delay=0.1, cdn_delta=60.0),
        DelayLayerConfig(),
    )
    views = build_views(producers, num_views=8, streams_per_site=3)

    print(f"{SPECTATORS} spectators join the exer-gaming match simultaneously")
    system.run_workload(spectators, schedule, views, snapshot_every=100)

    metrics = system.metrics
    joins = describe(metrics.join_delays)
    print()
    print(f"join delay          : p50={joins.p50 * 1000:.0f} ms  p95={joins.p95 * 1000:.0f} ms  "
          f"max={joins.maximum * 1000:.0f} ms")
    if metrics.view_change_delays:
        changes = describe(metrics.view_change_delays)
        print(f"view-change latency : p50={changes.p50 * 1000:.0f} ms  "
              f"p95={changes.p95 * 1000:.0f} ms  max={changes.maximum * 1000:.0f} ms")
        print(f"view changes served : {len(metrics.view_change_delays)}")
    print(f"victims created     : {metrics.victim_events}")
    print(f"victims recovered   : {metrics.recovered_victims}")
    print(f"subscriptions lost  : {metrics.lost_victim_subscriptions}")

    snapshot = system.snapshot()
    print()
    print(f"spectators still connected at the end : {snapshot.num_viewers}")
    print(f"stream acceptance ratio over the match: {metrics.acceptance_ratio:.3f}")
    print(f"CDN share of active subscriptions     : {snapshot.cdn_fraction:.0%}")


if __name__ == "__main__":
    main()
