#!/usr/bin/env python3
"""Quickstart: build a 3DTI session and join a handful of viewers.

This walks through the public API end to end:

1. create the producer sites (2 sites x 8 cameras, as in the paper),
2. create a CDN and a network delay model,
3. build candidate views and start a 4D TeleCast session,
4. join viewers, change a view, disconnect a viewer,
5. inspect the metrics and the overlay state.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DelayLayerConfig, TeleCastSystem, build_views
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.model.viewer import Viewer
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom


def main() -> None:
    # --- substrates ---------------------------------------------------------
    producers = make_default_producers(num_sites=2, cameras_per_site=8)
    viewer_ids = [f"viewer-{i}" for i in range(8)]
    latency = generate_planetlab_matrix(viewer_ids + ["GSC", "LSC-0", "CDN"], rng=SeededRandom(1))
    delay_model = DelayModel(latency, processing_delay=0.1, cdn_delta=60.0)
    cdn = CDN(outbound_capacity_mbps=200.0, delta=60.0)

    # --- the 4D TeleCast session ---------------------------------------------
    layer_config = DelayLayerConfig(delta=60.0, buffer_duration=0.3, kappa=2, d_max=65.0)
    system = TeleCastSystem(producers, cdn, delay_model, layer_config)
    views = build_views(producers, num_views=4, streams_per_site=3)
    print(f"created {len(views)} candidate views; view-0 streams: "
          f"{[str(s) for s in views[0].stream_ids]}")

    # --- viewers join ---------------------------------------------------------
    for index, viewer_id in enumerate(viewer_ids):
        viewer = Viewer(
            viewer_id=viewer_id,
            inbound_capacity_mbps=12.0,
            outbound_capacity_mbps=float(index % 4) * 4.0,
        )
        result = system.join_viewer(viewer, views[index % 2])
        print(
            f"{viewer_id}: accepted={result.accepted} "
            f"streams={result.num_accepted}/{result.num_requested} "
            f"via_cdn={len(result.cdn_stream_ids)} "
            f"join_delay={result.join_delay * 1000:.0f} ms"
        )

    # --- a view change and a departure ---------------------------------------
    change = system.change_view("viewer-0", views[3])
    print(
        f"viewer-0 changed {change.old_view_id} -> {change.new_view_id} "
        f"in {change.fast_path_delay * 1000:.0f} ms "
        f"(victims: {len(change.victims)}, recovered: {change.recovered_victims})"
    )
    departure = system.depart_viewer("viewer-1")
    print(f"viewer-1 departed; victims recovered: {departure.recovered_victims}")

    # --- session state ---------------------------------------------------------
    snapshot = system.snapshot()
    print()
    print(f"connected viewers        : {snapshot.num_viewers}")
    print(f"active subscriptions     : {snapshot.active_subscriptions}")
    print(f"served by CDN            : {snapshot.cdn_subscriptions} "
          f"({snapshot.cdn_fraction:.0%} of subscriptions)")
    print(f"CDN outbound bandwidth   : {snapshot.cdn_outbound_mbps:.0f} Mbps")
    print(f"stream acceptance ratio  : {system.metrics.acceptance_ratio:.2f}")
    max_layers = snapshot.max_layers.values()
    if max_layers:
        print(f"delay layers (max/viewer): min={min(max_layers)} max={max(max_layers)}")


if __name__ == "__main__":
    main()
