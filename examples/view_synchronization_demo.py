#!/usr/bin/env python3
"""View synchronization: delay layers, push-downs and frame-level skew.

The part of 4D TeleCast that is hardest to see in aggregate numbers is the
delay-layer hierarchy: viewers deliberately *delay* their freshest streams
so that all streams of a view stay within the gateway buffer and the
renderer can compose a consistent 3D scene.  This example builds a small
overlay, prints every viewer's per-stream layers and deliberate delays,
then replays a synthetic TEEVE frame trace through the overlay and measures
the actual inter-stream skew each viewer would observe.

Run with::

    python examples/view_synchronization_demo.py
"""

from __future__ import annotations

from repro.core import DelayLayerConfig, TeleCastSystem, build_views
from repro.core.dataplane import OverlayDataPlane
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.model.viewer import Viewer
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom
from repro.traces.teeve import TeeveSessionConfig, TeeveSessionTrace


def main() -> None:
    producers = make_default_producers(num_sites=2, cameras_per_site=8)
    viewer_ids = [f"viewer-{i}" for i in range(10)]
    latency = generate_planetlab_matrix(viewer_ids + ["GSC", "LSC-0", "CDN"], rng=SeededRandom(4))
    layer_config = DelayLayerConfig(delta=60.0, buffer_duration=0.3, kappa=2, d_max=65.0)
    system = TeleCastSystem(
        producers,
        CDN(60.0, delta=60.0),  # a small CDN so most viewers relay for each other
        DelayModel(latency, processing_delay=0.1, cdn_delta=60.0),
        layer_config,
    )
    view = build_views(producers, num_views=1, streams_per_site=3)[0]

    # Decreasing uplink capacity: early viewers become relays for later ones.
    for index, viewer_id in enumerate(viewer_ids):
        viewer = Viewer(viewer_id=viewer_id, outbound_capacity_mbps=max(0.0, 12.0 - index * 1.5))
        system.join_viewer(viewer, view)

    print(f"layer width tau = {layer_config.tau * 1000:.0f} ms, "
          f"kappa = {layer_config.kappa}, buffer = {layer_config.buffer_duration * 1000:.0f} ms")
    print()
    print(f"{'viewer':>10} {'layers (per stream)':>28} {'spread':>7} {'delayed receive':>16}")
    lsc = system.gsc.lscs[0]
    for viewer_id in viewer_ids:
        session = lsc.session_of(viewer_id)
        if session is None:
            print(f"{viewer_id:>10} (rejected)")
            continue
        layers = [session.subscriptions[sid].layer for sid in sorted(session.subscriptions)]
        delayed = max(sub.delayed_receive for sub in session.subscriptions.values())
        print(
            f"{viewer_id:>10} {str(layers):>28} {session.layer_spread():>7} "
            f"{delayed * 1000:>13.0f} ms"
        )

    # Replay a short synthetic TEEVE capture through the overlay.
    trace = TeeveSessionTrace(
        producers, config=TeeveSessionConfig(duration=5.0), rng=SeededRandom(2)
    )
    report = OverlayDataPlane(system, trace).replay(max_frames_per_stream=40)

    print()
    print("frame-level skew between dependent streams at each viewer:")
    bound = layer_config.buffer_duration + layer_config.tau
    for viewer_id in viewer_ids:
        skew = report.skew_for(viewer_id)
        if skew is None:
            continue
        status = "ok" if skew <= bound else "VIOLATION"
        print(f"  {viewer_id:>10}: {skew * 1000:6.0f} ms  (bound {bound * 1000:.0f} ms) {status}")


if __name__ == "__main__":
    main()
