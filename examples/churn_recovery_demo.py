#!/usr/bin/env python3
"""Churn & failure recovery: abrupt departures, timeouts, mass-leave, failover.

This demo exercises the recovery subsystem end to end:

1. build a two-region session and join a population of viewers,
2. crash a heavily-forwarding viewer and watch its stranded subtrees be
   repaired incrementally (P2P re-parenting first, CDN as last resort),
3. let part of the population go silent and have the heartbeat sweep
   detect and repair them,
4. inject a correlated mass-leave followed by a rejoin flash crowd,
5. fail an entire Local Session Controller and fail its region over to
   the surviving neighbor.

Run with::

    python examples/churn_recovery_demo.py
"""

from __future__ import annotations

from repro.core import DelayLayerConfig, TeleCastSystem, build_views
from repro.model.cdn import CDN
from repro.model.producer import make_default_producers
from repro.model.viewer import Viewer
from repro.net.latency import DelayModel
from repro.net.planetlab import generate_planetlab_matrix
from repro.sim.rng import SeededRandom


def main() -> None:
    # --- substrates ---------------------------------------------------------
    producers = make_default_producers(num_sites=2, cameras_per_site=8)
    viewer_ids = [f"viewer-{i:02d}" for i in range(24)]
    latency = generate_planetlab_matrix(
        viewer_ids + ["GSC", "LSC-0", "LSC-1", "CDN"], rng=SeededRandom(1)
    )
    delay_model = DelayModel(latency, processing_delay=0.1, cdn_delta=60.0)
    cdn = CDN(outbound_capacity_mbps=600.0, delta=60.0)
    layer_config = DelayLayerConfig(delta=60.0, buffer_duration=0.3, kappa=2, d_max=65.0)
    system = TeleCastSystem(
        producers, cdn, delay_model, layer_config, num_lscs=2, heartbeat_timeout=10.0
    )
    views = build_views(producers, num_views=2, streams_per_site=3)

    # --- a two-region population joins ---------------------------------------
    for index, viewer_id in enumerate(viewer_ids):
        viewer = Viewer(
            viewer_id=viewer_id,
            inbound_capacity_mbps=12.0,
            outbound_capacity_mbps=float(index % 4) * 6.0,
            region_name=f"region-{index % 2}",
        )
        system.join_viewer(viewer, views[index % 2], now=0.0)
    print(f"joined {system.connected_viewer_count} viewers across 2 regions")

    # --- an abrupt failure ----------------------------------------------------
    lsc = system.gsc.lscs[0]
    forwarder = max(
        lsc.sessions,
        key=lambda vid: sum(
            len(lsc.sessions[vid].routing_table.children_of(sid))
            for sid in lsc.sessions[vid].subscriptions
        ),
    )
    repair = system.fail_viewer(forwarder, now=5.0)
    print(
        f"\n{forwarder} crashed: {len(repair.orphaned)} subscriptions orphaned, "
        f"{repair.repaired_p2p} re-parented P2P, {repair.repaired_cdn} moved to "
        f"the CDN, {repair.lost_subscriptions} lost"
    )

    # --- timeout detection ----------------------------------------------------
    # Most viewers keep their heartbeats fresh; two go silent.
    silent = [vid for vid in viewer_ids if system.lsc_of(vid) is not None][:2]
    for viewer_id in viewer_ids:
        if viewer_id not in silent and system.lsc_of(viewer_id) is not None:
            system.heartbeat(viewer_id, now=12.0)
    swept = [r for r in system.detect_failures(now=14.0) if r.departed]
    print(
        f"heartbeat sweep at t=14s declared {len(swept)} silent viewers failed: "
        f"{', '.join(r.viewer_id for r in swept)}"
    )

    # --- correlated mass-leave + rejoin flash crowd ----------------------------
    leavers = [vid for vid in viewer_ids if system.lsc_of(vid) is not None][:8]
    for viewer_id in leavers:
        system.fail_viewer(viewer_id, now=20.0)
    print(f"\nmass-leave: {len(leavers)} viewers crashed simultaneously at t=20s")
    print(f"connected viewers after mass-leave : {system.connected_viewer_count}")
    for index, viewer_id in enumerate(leavers):
        viewer = Viewer(
            viewer_id=viewer_id,
            inbound_capacity_mbps=12.0,
            outbound_capacity_mbps=6.0,
            region_name=f"region-{index % 2}",
        )
        system.join_viewer(viewer, views[index % 2], now=25.0)
    print(f"connected viewers after flash crowd: {system.connected_viewer_count}")

    # --- LSC failover ----------------------------------------------------------
    doomed = system.gsc.lscs[0].lsc_id
    failover = system.fail_lsc(doomed, now=30.0)
    print(
        f"\n{doomed} failed; GSC reassigned regions {list(failover.reassigned_regions)} "
        f"to {failover.target_lsc_id}: {failover.migrated_viewers} viewers migrated, "
        f"{failover.lost_viewers} lost"
    )

    # --- final state ------------------------------------------------------------
    snapshot = system.snapshot()
    metrics = system.metrics
    print()
    print(f"connected viewers        : {snapshot.num_viewers}")
    print(f"active subscriptions     : {snapshot.active_subscriptions}")
    print(f"served by CDN            : {snapshot.cdn_subscriptions}")
    print(f"abrupt departures        : {metrics.abrupt_departures}")
    print(
        f"repaired subscriptions   : "
        f"{metrics.repaired_subscriptions_p2p + metrics.repaired_subscriptions_cdn} "
        f"({metrics.repaired_subscriptions_p2p} P2P / "
        f"{metrics.repaired_subscriptions_cdn} CDN)"
    )
    print(f"lost in repair           : {metrics.lost_repair_subscriptions}")
    print(f"LSC failovers            : {metrics.lsc_failovers}")


if __name__ == "__main__":
    main()
